package resgraph

import (
	"errors"
	"reflect"
	"testing"
)

// buildTiny constructs cluster0 -> rack{0,1} -> node{0..3} -> 4 cores +
// 1 memory pool (size 16) each.
func buildTiny(t *testing.T, spec PruneSpec) *Graph {
	t.Helper()
	g := NewGraph(0, 1<<20)
	if spec != nil {
		if err := g.SetPruneSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	cluster := g.MustAddVertex("cluster", -1, 1)
	for r := 0; r < 2; r++ {
		rack := g.MustAddVertex("rack", -1, 1)
		if err := g.AddContainment(cluster, rack); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 2; n++ {
			node := g.MustAddVertex("node", -1, 1)
			if err := g.AddContainment(rack, node); err != nil {
				t.Fatal(err)
			}
			for c := 0; c < 4; c++ {
				core := g.MustAddVertex("core", -1, 1)
				if err := g.AddContainment(node, core); err != nil {
					t.Fatal(err)
				}
			}
			mem := g.MustAddVertex("memory", -1, 16)
			mem.Unit = "GB"
			if err := g.AddContainment(node, mem); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFinalizePathsAndAggregates(t *testing.T) {
	g := buildTiny(t, nil)
	root := g.Root(Containment)
	if root == nil || root.Type != "cluster" {
		t.Fatalf("root = %v", root)
	}
	if root.Path() != "/cluster0" {
		t.Fatalf("root path = %q", root.Path())
	}
	n := g.ByPath("/cluster0/rack1/node3")
	if n == nil || n.Type != "node" || n.ID != 3 {
		t.Fatalf("ByPath = %+v", n)
	}
	wantRoot := map[string]int64{"cluster": 1, "rack": 2, "node": 4, "core": 16, "memory": 64}
	if !reflect.DeepEqual(root.Aggregates(), wantRoot) {
		t.Fatalf("root agg = %v, want %v", root.Aggregates(), wantRoot)
	}
	rack := g.ByPath("/cluster0/rack0")
	wantRack := map[string]int64{"rack": 1, "node": 2, "core": 8, "memory": 32}
	if !reflect.DeepEqual(rack.Aggregates(), wantRack) {
		t.Fatalf("rack agg = %v", rack.Aggregates())
	}
	// Every vertex has a planner sized to its pool.
	for _, v := range g.Vertices() {
		if v.Planner() == nil || v.Planner().Total() != v.Size {
			t.Fatalf("planner missing/sized wrong on %s", v.Name)
		}
	}
}

func TestParentChildNavigation(t *testing.T) {
	g := buildTiny(t, nil)
	node := g.ByPath("/cluster0/rack0/node1")
	if node.Parent().Name != "rack0" {
		t.Fatalf("Parent = %s", node.Parent().Name)
	}
	kids := node.Children(Containment)
	if len(kids) != 5 { // 4 cores + 1 memory
		t.Fatalf("children = %d", len(kids))
	}
	for _, c := range kids {
		if c.Type == "rack" || c.Type == "cluster" {
			t.Fatalf("reciprocal edge leaked into children: %s", c.Name)
		}
		if c.Parent() != node {
			t.Fatalf("child %s parent = %v", c.Name, c.Parent())
		}
	}
	if g.Root(Containment).Parent() != nil {
		t.Fatal("root must have nil parent")
	}
	count := 0
	node.EachChild(Containment, func(c *Vertex) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("EachChild early stop: %d", count)
	}
}

func TestPruneSpecParsing(t *testing.T) {
	spec, err := ParsePruneSpec("ALL:core,rack:node,node@gpu")
	if err != nil {
		t.Fatal(err)
	}
	want := PruneSpec{ALL: {"core"}, "rack": {"node"}, "node": {"gpu"}}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("spec = %v", spec)
	}
	if s, err := ParsePruneSpec("  "); err != nil || len(s) != 0 {
		t.Fatalf("empty spec: %v, %v", s, err)
	}
	for _, bad := range []string{"nocolon", ":core", "rack:"} {
		if _, err := ParsePruneSpec(bad); !errors.Is(err, ErrInvalid) {
			t.Errorf("ParsePruneSpec(%q): %v", bad, err)
		}
	}
}

func TestFilterInstallation(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core"}, "rack": {"node"}})
	root := g.Root(Containment)
	if root.Filter() == nil {
		t.Fatal("root filter missing")
	}
	if root.Filter().Total("core") != 16 {
		t.Fatalf("root core filter total = %d", root.Filter().Total("core"))
	}
	rack := g.ByPath("/cluster0/rack0")
	if rack.Filter() == nil || rack.Filter().Total("core") != 8 || rack.Filter().Total("node") != 2 {
		t.Fatalf("rack filter = %v", rack.Filter())
	}
	node := g.ByPath("/cluster0/rack0/node0")
	if node.Filter() == nil || node.Filter().Total("core") != 4 {
		t.Fatal("node filter missing core tracking")
	}
	// Leaves never carry filters.
	core := g.ByPath("/cluster0/rack0/node0/core0")
	if core.Filter() != nil {
		t.Fatal("leaf has a filter")
	}
	// Without a spec, no filters exist.
	g2 := buildTiny(t, nil)
	for _, v := range g2.Vertices() {
		if v.Filter() != nil {
			t.Fatalf("unexpected filter on %s", v.Name)
		}
	}
}

func TestFinalizeErrors(t *testing.T) {
	// Empty graph.
	if err := NewGraph(0, 100).Finalize(); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty: %v", err)
	}
	// Two roots.
	g := NewGraph(0, 100)
	g.MustAddVertex("a", -1, 1)
	g.MustAddVertex("b", -1, 1)
	if err := g.Finalize(); !errors.Is(err, ErrInvalid) {
		t.Errorf("two roots: %v", err)
	}
	// Double finalize.
	g2 := NewGraph(0, 100)
	g2.MustAddVertex("a", -1, 1)
	if err := g2.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := g2.Finalize(); !errors.Is(err, ErrInvalid) {
		t.Errorf("double finalize: %v", err)
	}
	// Second parent rejected at AddContainment.
	g3 := NewGraph(0, 100)
	a := g3.MustAddVertex("a", -1, 1)
	b := g3.MustAddVertex("b", -1, 1)
	c := g3.MustAddVertex("c", -1, 1)
	if err := g3.AddContainment(a, c); err != nil {
		t.Fatal(err)
	}
	if err := g3.AddContainment(b, c); !errors.Is(err, ErrInvalid) {
		t.Errorf("second parent: %v", err)
	}
}

func TestAddVertexValidation(t *testing.T) {
	g := NewGraph(0, 100)
	if _, err := g.AddVertex("", -1, 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty type: %v", err)
	}
	if _, err := g.AddVertex("x", -1, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero size: %v", err)
	}
	v1 := g.MustAddVertex("node", -1, 1)
	v2 := g.MustAddVertex("node", -1, 1)
	if v1.ID != 0 || v2.ID != 1 || v2.Name != "node1" {
		t.Fatalf("auto IDs: %d %d %s", v1.ID, v2.ID, v2.Name)
	}
	v9 := g.MustAddVertex("node", 9, 1)
	v10 := g.MustAddVertex("node", -1, 1)
	if v9.ID != 9 || v10.ID != 10 {
		t.Fatalf("explicit ID then auto: %d %d", v9.ID, v10.ID)
	}
}

func TestByTypeAndStats(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core"}})
	if n := len(g.ByType("core")); n != 16 {
		t.Fatalf("cores = %d", n)
	}
	if n := len(g.ByType("nonexistent")); n != 0 {
		t.Fatalf("nonexistent = %d", n)
	}
	s := g.Stats()
	if s == "" || g.Len() != 27 {
		t.Fatalf("Stats = %q, Len = %d", s, g.Len())
	}
}

func TestMultiSubsystemOverlay(t *testing.T) {
	g := NewGraph(0, 1000)
	cluster := g.MustAddVertex("cluster", -1, 1)
	node := g.MustAddVertex("node", -1, 1)
	pdu := g.MustAddVertex("pdu", -1, 100) // 100 W power pool
	if err := g.AddContainment(cluster, node); err != nil {
		t.Fatal(err)
	}
	if err := g.AddContainment(cluster, pdu); err != nil {
		t.Fatal(err)
	}
	// Power subsystem overlay: pdu feeds the node.
	if err := g.AddEdge(pdu, node, "power", "supplies_to"); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	g.SetRoot("power", pdu)
	subs := g.Subsystems()
	if len(subs) != 2 || subs[0] != Containment || subs[1] != "power" {
		t.Fatalf("Subsystems = %v", subs)
	}
	if g.Root("power") != pdu {
		t.Fatal("power root")
	}
	kids := pdu.Children("power")
	if len(kids) != 1 || kids[0] != node {
		t.Fatalf("power children = %v", kids)
	}
	// Containment children of cluster must not include power edges.
	if len(cluster.Children(Containment)) != 2 {
		t.Fatalf("containment children = %v", cluster.Children(Containment))
	}
}

func TestAttachGrowsAggregatesAndFilters(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core"}})
	rack := g.ByPath("/cluster0/rack1")
	before := rack.Filter().Total("core")

	// Build a new node subtree post-finalize and attach it.
	node := g.MustAddVertex("node", -1, 1)
	for i := 0; i < 4; i++ {
		c := g.MustAddVertex("core", -1, 1)
		if err := g.AddContainment(node, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Attach(rack, node); err != nil {
		t.Fatal(err)
	}
	if node.Path() != "/cluster0/rack1/node4" {
		t.Fatalf("attached path = %q", node.Path())
	}
	if g.ByPath(node.Path()) != node {
		t.Fatal("path index not updated")
	}
	if got := rack.Filter().Total("core"); got != before+4 {
		t.Fatalf("rack core filter = %d, want %d", got, before+4)
	}
	if got := g.Root(Containment).Filter().Total("core"); got != 20 {
		t.Fatalf("root core filter = %d, want 20", got)
	}
	if got := g.Root(Containment).Aggregates()["core"]; got != 20 {
		t.Fatalf("root core agg = %d", got)
	}
	if node.Planner() == nil || node.Filter() == nil {
		t.Fatal("attached node missing planner/filter")
	}
}

func TestDetachShrinksAndRefusesBusy(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core"}})
	node := g.ByPath("/cluster0/rack0/node0")
	core := g.ByPath("/cluster0/rack0/node0/core0")

	// Busy subtree refuses detach.
	id, err := core.Planner().AddSpan(0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Detach(node); !errors.Is(err, ErrBusy) {
		t.Fatalf("busy detach: %v", err)
	}
	if err := core.Planner().RemoveSpan(id); err != nil {
		t.Fatal(err)
	}

	nVerts := g.Len()
	if err := g.Detach(node); err != nil {
		t.Fatal(err)
	}
	if g.Len() != nVerts-6 { // node + 4 cores + 1 memory
		t.Fatalf("Len = %d, want %d", g.Len(), nVerts-6)
	}
	if g.ByPath("/cluster0/rack0/node0") != nil {
		t.Fatal("path index retains detached vertex")
	}
	rack := g.ByPath("/cluster0/rack0")
	if got := rack.Filter().Total("core"); got != 4 {
		t.Fatalf("rack core filter = %d, want 4", got)
	}
	if got := g.Root(Containment).Aggregates()["core"]; got != 12 {
		t.Fatalf("root core agg = %d, want 12", got)
	}
	if len(rack.Children(Containment)) != 1 {
		t.Fatalf("rack children = %v", rack.Children(Containment))
	}
	// Detaching the root is rejected.
	if err := g.Detach(g.Root(Containment)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("detach root: %v", err)
	}
}

func TestProperties(t *testing.T) {
	g := buildTiny(t, nil)
	n := g.ByPath("/cluster0/rack0/node0")
	if n.Property("perfclass") != "" {
		t.Fatal("unset property should be empty")
	}
	n.SetProperty("perfclass", "3")
	if n.Property("perfclass") != "3" {
		t.Fatal("property roundtrip failed")
	}
}

func TestStatusString(t *testing.T) {
	if StatusUp.String() != "up" || StatusDown.String() != "down" {
		t.Fatal("status strings")
	}
}

func TestAccessors(t *testing.T) {
	g := buildTiny(t, nil)
	if g.Base() != 0 || g.Horizon() != 1<<20 || !g.Finalized() {
		t.Fatal("graph accessors")
	}
	n := g.ByPath("/cluster0/rack0/node0")
	if n.String() != "/cluster0/rack0/node0" {
		t.Fatalf("String = %q", n.String())
	}
	orphan := &Vertex{Name: "loose"}
	if orphan.String() != "loose" {
		t.Fatalf("orphan String = %q", orphan.String())
	}
	if len(n.OutEdges(Containment)) == 0 || len(n.InEdges(Containment)) == 0 {
		t.Fatal("edge accessors")
	}
}

func TestAttachErrors(t *testing.T) {
	g := buildTiny(t, nil)
	g2 := buildTiny(t, nil)
	foreign := g2.ByPath("/cluster0/rack0/node0")
	rack := g.ByPath("/cluster0/rack0")
	if err := g.Attach(rack, foreign); !errors.Is(err, ErrInvalid) {
		t.Fatalf("foreign: %v", err)
	}
	// Already-attached subtree.
	own := g.ByPath("/cluster0/rack0/node0")
	if err := g.Attach(rack, own); !errors.Is(err, ErrInvalid) {
		t.Fatalf("already attached: %v", err)
	}
	// Unfinalized graph refuses Attach.
	g3 := NewGraph(0, 100)
	a := g3.MustAddVertex("a", -1, 1)
	b := g3.MustAddVertex("b", -1, 1)
	if err := g3.Attach(a, b); !errors.Is(err, ErrNotFinalized) {
		t.Fatalf("unfinalized: %v", err)
	}
	// Detached parent refuses Attach.
	node := g.ByPath("/cluster0/rack1/node2")
	if err := g.Detach(node); err != nil {
		t.Fatal(err)
	}
	fresh := g.MustAddVertex("node", -1, 1)
	if err := g.Attach(node, fresh); !errors.Is(err, ErrInvalid) {
		t.Fatalf("detached parent: %v", err)
	}
}

// filterAvail returns the amount of rt available in v's filter at t=0 for
// one second, or -1 when the filter does not track rt.
func filterAvail(t *testing.T, v *Vertex, rt string) int64 {
	t.Helper()
	f := v.Filter()
	if f == nil {
		t.Fatalf("%s has no filter", v.Name)
	}
	p := f.Planner(rt)
	if p == nil {
		return -1
	}
	avail, err := p.AvailDuring(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return avail
}

func TestMarkDownPropagatesToAncestorFilters(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core", "node"}})
	root := g.Root(Containment)
	rack := g.ByPath("/cluster0/rack0")
	node := g.ByPath("/cluster0/rack0/node0")

	if got := filterAvail(t, root, "core"); got != 16 {
		t.Fatalf("root cores = %d", got)
	}
	delta, err := g.MarkDown(node)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"node": 1, "core": 4, "memory": 16}
	if !reflect.DeepEqual(delta, want) {
		t.Fatalf("delta = %v", delta)
	}
	// The whole subtree is down.
	if node.Status != StatusDown || g.ByPath("/cluster0/rack0/node0/core2").Status != StatusDown {
		t.Fatal("subtree not down")
	}
	// Ancestor filters exclude the downed subtree; sibling rack intact.
	if got := filterAvail(t, root, "core"); got != 12 {
		t.Fatalf("root cores after down = %d", got)
	}
	if got := filterAvail(t, root, "node"); got != 3 {
		t.Fatalf("root nodes after down = %d", got)
	}
	if got := filterAvail(t, rack, "core"); got != 4 {
		t.Fatalf("rack cores after down = %d", got)
	}
	if got := filterAvail(t, g.ByPath("/cluster0/rack1"), "core"); got != 8 {
		t.Fatalf("sibling rack cores = %d", got)
	}

	// MarkDown is idempotent.
	delta2, err := g.MarkDown(node)
	if err != nil || len(delta2) != 0 {
		t.Fatalf("second MarkDown: %v, %v", delta2, err)
	}
	if got := filterAvail(t, root, "core"); got != 12 {
		t.Fatalf("root cores after repeat = %d", got)
	}

	// MarkUp restores everything.
	up, err := g.MarkUp(node)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(up, want) {
		t.Fatalf("up delta = %v", up)
	}
	if got := filterAvail(t, root, "core"); got != 16 {
		t.Fatalf("root cores after up = %d", got)
	}
	if node.Status != StatusUp || g.ByPath("/cluster0/rack0/node0/core3").Status != StatusUp {
		t.Fatal("subtree not restored")
	}
}

func TestMarkDownNestedDomainsNeverDoubleCount(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core", "node"}})
	root := g.Root(Containment)
	node := g.ByPath("/cluster0/rack0/node0")
	rack := g.ByPath("/cluster0/rack0")

	if _, err := g.MarkDown(node); err != nil {
		t.Fatal(err)
	}
	// Downing the rack counts only the still-up remainder.
	delta, err := g.MarkDown(rack)
	if err != nil {
		t.Fatal(err)
	}
	if delta["core"] != 4 || delta["node"] != 1 || delta["rack"] != 1 {
		t.Fatalf("rack delta = %v", delta)
	}
	if got := filterAvail(t, root, "core"); got != 8 {
		t.Fatalf("root cores = %d", got)
	}
	// Repairing the rack repairs the nested node too.
	up, err := g.MarkUp(rack)
	if err != nil {
		t.Fatal(err)
	}
	if up["core"] != 8 || up["node"] != 2 {
		t.Fatalf("up delta = %v", up)
	}
	if got := filterAvail(t, root, "core"); got != 16 {
		t.Fatalf("root cores restored = %d", got)
	}
	if node.Status != StatusUp {
		t.Fatal("nested node still down")
	}
}

func TestMarkDownErrors(t *testing.T) {
	g := NewGraph(0, 100)
	a := g.MustAddVertex("a", -1, 1)
	if _, err := g.MarkDown(a); !errors.Is(err, ErrNotFinalized) {
		t.Fatalf("unfinalized: %v", err)
	}
	fin := buildTiny(t, nil)
	if _, err := fin.MarkDown(nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil vertex: %v", err)
	}
	if _, err := fin.MarkDown(a); !errors.Is(err, ErrInvalid) {
		t.Fatalf("foreign vertex: %v", err)
	}
}

func TestFinalizeExcludesLoadedDownVertices(t *testing.T) {
	// A graph whose vertices arrive already down (the JGF/GraphML load
	// path) must finalize with filters that exclude them.
	g := NewGraph(0, 1<<20)
	if err := g.SetPruneSpec(PruneSpec{ALL: {"core"}}); err != nil {
		t.Fatal(err)
	}
	cluster := g.MustAddVertex("cluster", -1, 1)
	for n := 0; n < 2; n++ {
		node := g.MustAddVertex("node", -1, 1)
		if err := g.AddContainment(cluster, node); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 4; c++ {
			core := g.MustAddVertex("core", -1, 1)
			if n == 1 {
				core.Status = StatusDown
			}
			if err := g.AddContainment(node, core); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.ByType("node")[1].Status = StatusDown // node1 itself
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := filterAvail(t, g.Root(Containment), "core"); got != 4 {
		t.Fatalf("root cores = %d", got)
	}
}

// TestNestedMarkDownThenSubtreeMarkUpRestoresInteriorFilters pins the
// composition bug where MarkDown(node) followed by MarkUp(rack) leaked
// capacity from the rack's own filter: per-vertex propagation must leave
// every filter — interior ones included — exactly as before the failures.
func TestNestedMarkDownThenSubtreeMarkUpRestoresInteriorFilters(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core", "node"}})
	root := g.Root(Containment)
	rack := g.ByPath("/cluster0/rack0")
	node := g.ByPath("/cluster0/rack0/node0")

	before := func(v *Vertex) [2]int64 {
		return [2]int64{filterAvail(t, v, "core"), filterAvail(t, v, "node")}
	}
	wantRoot, wantRack, wantNode := before(root), before(rack), before(node)

	// Inner domain fails first, then the whole rack, then the rack is
	// repaired wholesale (covering the node downed separately).
	if _, err := g.MarkDown(node); err != nil {
		t.Fatal(err)
	}
	// The rack's own filter excludes the downed node's capacity.
	if got := filterAvail(t, rack, "core"); got != wantRack[0]-4 {
		t.Fatalf("rack cores after node down = %d, want %d", got, wantRack[0]-4)
	}
	if _, err := g.MarkDown(rack); err != nil {
		t.Fatal(err)
	}
	if _, err := g.MarkUp(rack); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		v    *Vertex
		want [2]int64
	}{{root, wantRoot}, {rack, wantRack}, {node, wantNode}} {
		if got := before(tc.v); got != tc.want {
			t.Errorf("%s filter = %v, want %v after full repair", tc.v.Name, got, tc.want)
		}
	}
}
