package resgraph

import "fmt"

// This file implements partition extraction for sharded scheduling
// (internal/shard): a finalized containment graph is split into n
// independent shard graphs, cut at a configurable containment level.
//
// The partition model: every vertex of type cutType is a *unit* — an
// indivisible subtree that lands wholly inside one shard. The ancestors
// of the units (the path from each unit up to the root) form the
// *skeleton*, which is replicated into every shard so that containment
// paths — and therefore match traversals, pruning-filter placement, and
// allocation grants — read identically to the flat graph. Subtrees that
// contain no cut vertex and hang off the skeleton (stray pools beside
// the racks, say) are units too: every vertex belongs to exactly one
// shard, and shard capacities sum to the flat graph's.
//
// Units are assigned round-robin in pre-order, so shard k holds units
// k, k+n, k+2n, … and shard sizes differ by at most one unit. Cloning
// walks the flat graph's published topo slab in pre-order, which
// preserves sibling order exactly; with n = 1 the clone is
// vertex-for-vertex identical to the original (same UniqID order, same
// paths, same intern sequence), which is what makes the 1-shard sharded
// scheduler decision-identical to the flat one.

// Partition splits a finalized graph into n shard graphs cut at the
// given containment type. Each shard graph is independently finalized
// with a copy of the source's prune spec and shares no state with the
// source or its siblings. The source graph is not modified.
func (g *Graph) Partition(cutType string, n int) ([]*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: partition into %d shards", ErrInvalid, n)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if !g.finalized {
		return nil, ErrNotFinalized
	}
	ts := g.topo.Load()
	root := g.roots[Containment]
	if ts == nil || root == nil {
		return nil, fmt.Errorf("%w: no containment tree to partition", ErrInvalid)
	}

	// Skeleton: every (strict) ancestor of a cut vertex, plus the root.
	// A nested cut vertex (cutType inside cutType) promotes its ancestor
	// cut to skeleton and splits below it.
	skeleton := make(map[*Vertex]bool)
	skeleton[root] = true
	cuts := 0
	for _, v := range ts.order {
		if v.Type != cutType {
			continue
		}
		cuts++
		for p := v.parent; p != nil && !skeleton[p]; p = p.parent {
			skeleton[p] = true
		}
	}
	if cuts == 0 {
		return nil, fmt.Errorf("%w: no %q vertices to cut at", ErrInvalid, cutType)
	}

	// Unit roots: the maximal non-skeleton subtrees, in pre-order.
	var units []*Vertex
	for i := 0; i < len(ts.order); {
		v := ts.order[i]
		if skeleton[v] {
			i++
			continue
		}
		units = append(units, v)
		i = int(ts.post[v.UniqID])
	}
	if len(units) < n {
		return nil, fmt.Errorf("%w: %d %q-cut units cannot fill %d shards",
			ErrInvalid, len(units), cutType, n)
	}
	shardOf := make(map[*Vertex]int, len(units))
	for i, u := range units {
		shardOf[u] = i % n
	}

	out := make([]*Graph, n)
	for k := 0; k < n; k++ {
		ng := NewGraph(g.base, g.horizon)
		for typ, rs := range g.prune {
			ng.prune[typ] = append([]string(nil), rs...)
		}
		clones := make(map[*Vertex]*Vertex, len(skeleton)+len(ts.order)/n+1)
		clone := func(v *Vertex) error {
			nv, err := ng.AddVertex(v.Type, v.ID, v.Size)
			if err != nil {
				return err
			}
			nv.Unit = v.Unit
			nv.Status = v.Status
			for pk, pv := range v.Properties {
				nv.SetProperty(pk, pv)
			}
			clones[v] = nv
			if p := v.parent; p != nil {
				if err := ng.AddContainment(clones[p], nv); err != nil {
					return err
				}
			}
			return nil
		}
		// One pre-order pass per shard: skeleton vertices always clone,
		// foreign units skip wholesale, owned units clone subtree-deep.
		// Global pre-order (and with it sibling order under every
		// skeleton parent) is preserved exactly.
		for i := 0; i < len(ts.order); {
			v := ts.order[i]
			if skeleton[v] {
				if err := clone(v); err != nil {
					return nil, err
				}
				i++
				continue
			}
			end := int(ts.post[v.UniqID])
			if shardOf[v] != k {
				i = end
				continue
			}
			for ; i < end; i++ {
				if err := clone(ts.order[i]); err != nil {
					return nil, err
				}
			}
		}
		if err := ng.Finalize(); err != nil {
			return nil, fmt.Errorf("resgraph: finalize shard %d: %w", k, err)
		}
		out[k] = ng
	}
	return out, nil
}

// PartitionUnits reports how many units a Partition at cutType would
// distribute — the upper bound on a usable shard count.
func (g *Graph) PartitionUnits(cutType string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ts := g.topo.Load()
	root := g.roots[Containment]
	if ts == nil || root == nil {
		return 0
	}
	skeleton := make(map[*Vertex]bool)
	skeleton[root] = true
	cuts := 0
	for _, v := range ts.order {
		if v.Type != cutType {
			continue
		}
		cuts++
		for p := v.parent; p != nil && !skeleton[p]; p = p.parent {
			skeleton[p] = true
		}
	}
	if cuts == 0 {
		return 0
	}
	units := 0
	for i := 0; i < len(ts.order); {
		v := ts.order[i]
		if skeleton[v] {
			i++
			continue
		}
		units++
		i = int(ts.post[v.UniqID])
	}
	return units
}
