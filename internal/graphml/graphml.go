// Package graphml serializes resource graph stores to and from GraphML,
// the XML graph format Fluxion's original GRUG tooling is built on
// ("Generating Resources Using GraphML", paper §6.1). It complements
// internal/jgf: JGF is flux-sched's JSON interchange, GraphML the format
// graph editors and GRUG pipelines speak.
package graphml

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fluxion/internal/resgraph"
)

// ErrFormat is wrapped by all decode errors.
var ErrFormat = errors.New("graphml: bad format")

// xmlns is the GraphML namespace.
const xmlns = "http://graphml.graphdrawing.org/xmlns"

type document struct {
	XMLName xml.Name `xml:"graphml"`
	Xmlns   string   `xml:"xmlns,attr"`
	Keys    []key    `xml:"key"`
	Graph   graphEl  `xml:"graph"`
}

type key struct {
	ID       string `xml:"id,attr"`
	For      string `xml:"for,attr"`
	AttrName string `xml:"attr.name,attr"`
	AttrType string `xml:"attr.type,attr"`
}

type graphEl struct {
	ID          string   `xml:"id,attr"`
	EdgeDefault string   `xml:"edgedefault,attr"`
	Nodes       []nodeEl `xml:"node"`
	Edges       []edgeEl `xml:"edge"`
}

type nodeEl struct {
	ID   string   `xml:"id,attr"`
	Data []dataEl `xml:"data"`
}

type edgeEl struct {
	Source string   `xml:"source,attr"`
	Target string   `xml:"target,attr"`
	Data   []dataEl `xml:"data"`
}

type dataEl struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// node data keys.
const (
	keyType   = "type"
	keyID     = "id"
	keySize   = "size"
	keyUnit   = "unit"
	keyStatus = "status"
	keyProps  = "properties" // "k=v;k2=v2"
	// edge data keys.
	keySubsystem = "subsystem"
	keyRelation  = "relation"
)

// Encode renders the store as GraphML. Output is deterministic: vertices
// in creation order, properties sorted.
func Encode(g *resgraph.Graph) ([]byte, error) {
	doc := document{
		Xmlns: xmlns,
		Keys: []key{
			{keyType, "node", "type", "string"},
			{keyID, "node", "id", "long"},
			{keySize, "node", "size", "long"},
			{keyUnit, "node", "unit", "string"},
			{keyStatus, "node", "status", "string"},
			{keyProps, "node", "properties", "string"},
			{keySubsystem, "edge", "subsystem", "string"},
			{keyRelation, "edge", "relation", "string"},
		},
		Graph: graphEl{ID: "G", EdgeDefault: "directed"},
	}
	for _, v := range g.Vertices() {
		n := nodeEl{ID: fmt.Sprintf("n%d", v.UniqID)}
		n.Data = append(n.Data,
			dataEl{keyType, v.Type},
			dataEl{keyID, strconv.FormatInt(v.ID, 10)},
			dataEl{keySize, strconv.FormatInt(v.Size, 10)},
		)
		if v.Unit != "" {
			n.Data = append(n.Data, dataEl{keyUnit, v.Unit})
		}
		if v.Status != resgraph.StatusUp {
			n.Data = append(n.Data, dataEl{keyStatus, v.Status.String()})
		}
		if len(v.Properties) > 0 {
			n.Data = append(n.Data, dataEl{keyProps, encodeProps(v.Properties)})
		}
		doc.Graph.Nodes = append(doc.Graph.Nodes, n)
	}
	for _, sub := range g.Subsystems() {
		for _, v := range g.Vertices() {
			for _, e := range v.OutEdges(sub) {
				doc.Graph.Edges = append(doc.Graph.Edges, edgeEl{
					Source: fmt.Sprintf("n%d", e.From.UniqID),
					Target: fmt.Sprintf("n%d", e.To.UniqID),
					Data: []dataEl{
						{keySubsystem, e.Subsystem},
						{keyRelation, e.Type},
					},
				})
			}
		}
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

func encodeProps(props map[string]string) string {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+props[k])
	}
	return strings.Join(parts, ";")
}

func decodeProps(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(s, ";") {
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("%w: bad property %q", ErrFormat, part)
		}
		out[part[:eq]] = part[eq+1:]
	}
	return out, nil
}

func dataValue(data []dataEl, key string) (string, bool) {
	for _, d := range data {
		if d.Key == key {
			return strings.TrimSpace(d.Value), true
		}
	}
	return "", false
}

// Decode reconstructs a finalized store from GraphML with the given
// planner range and prune spec. Reciprocal containment "in" edges are
// re-derived, so contains-only documents load too.
func Decode(data []byte, base, horizon int64, spec resgraph.PruneSpec) (*resgraph.Graph, error) {
	var doc document
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if len(doc.Graph.Nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrFormat)
	}
	g := resgraph.NewGraph(base, horizon)
	if spec != nil {
		if err := g.SetPruneSpec(spec); err != nil {
			return nil, err
		}
	}
	byID := make(map[string]*resgraph.Vertex, len(doc.Graph.Nodes))
	for _, n := range doc.Graph.Nodes {
		typ, ok := dataValue(n.Data, keyType)
		if !ok || typ == "" {
			return nil, fmt.Errorf("%w: node %q missing type", ErrFormat, n.ID)
		}
		id := int64(-1)
		if s, ok := dataValue(n.Data, keyID); ok {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: node %q id: %v", ErrFormat, n.ID, err)
			}
			id = v
		}
		size := int64(1)
		if s, ok := dataValue(n.Data, keySize); ok {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: node %q size: %v", ErrFormat, n.ID, err)
			}
			size = v
		}
		v, err := g.AddVertex(typ, id, size)
		if err != nil {
			return nil, fmt.Errorf("%w: node %q: %v", ErrFormat, n.ID, err)
		}
		if u, ok := dataValue(n.Data, keyUnit); ok {
			v.Unit = u
		}
		if s, ok := dataValue(n.Data, keyStatus); ok && s == "down" {
			v.Status = resgraph.StatusDown
		}
		if p, ok := dataValue(n.Data, keyProps); ok {
			props, err := decodeProps(p)
			if err != nil {
				return nil, err
			}
			for k, val := range props {
				v.SetProperty(k, val)
			}
		}
		if _, dup := byID[n.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate node id %q", ErrFormat, n.ID)
		}
		byID[n.ID] = v
	}
	for _, e := range doc.Graph.Edges {
		sub, _ := dataValue(e.Data, keySubsystem)
		rel, _ := dataValue(e.Data, keyRelation)
		if sub == "" {
			sub = resgraph.Containment
		}
		if sub == resgraph.Containment && rel == resgraph.EdgeIn {
			continue
		}
		from, ok := byID[e.Source]
		if !ok {
			return nil, fmt.Errorf("%w: edge source %q unknown", ErrFormat, e.Source)
		}
		to, ok := byID[e.Target]
		if !ok {
			return nil, fmt.Errorf("%w: edge target %q unknown", ErrFormat, e.Target)
		}
		if sub == resgraph.Containment {
			if err := g.AddContainment(from, to); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			continue
		}
		if err := g.AddEdge(from, to, sub, rel); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}
