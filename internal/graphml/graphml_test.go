package graphml

import (
	"errors"
	"strings"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
)

func TestRoundTrip(t *testing.T) {
	orig, err := grug.BuildGraph(grug.Small(2, 3, 4, 16, 100), 0, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig.ByType("node")[0].SetProperty("perfclass", "3")
	orig.ByType("node")[0].SetProperty("vendor", "amd")
	orig.ByType("node")[1].Status = resgraph.StatusDown

	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<?xml") || !strings.Contains(string(data), "<graphml") {
		t.Fatalf("not graphml:\n%.200s", data)
	}
	back, err := Decode(data, 0, 1000, resgraph.PruneSpec{resgraph.ALL: {"core"}})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("Len: %d vs %d", back.Len(), orig.Len())
	}
	a1 := orig.Root(resgraph.Containment).Aggregates()
	a2 := back.Root(resgraph.Containment).Aggregates()
	for typ, n := range a1 {
		if a2[typ] != n {
			t.Errorf("agg[%s]: %d vs %d", typ, a2[typ], n)
		}
	}
	n0 := back.ByType("node")[0]
	if n0.Property("perfclass") != "3" || n0.Property("vendor") != "amd" {
		t.Errorf("properties = %v", n0.Properties)
	}
	if back.ByType("node")[1].Status != resgraph.StatusDown {
		t.Error("status lost")
	}
	mem := back.ByType("memory")[0]
	if mem.Size != 16 || mem.Unit != "GB" {
		t.Errorf("memory = %d %q", mem.Size, mem.Unit)
	}
	if back.Root(resgraph.Containment).Filter() == nil {
		t.Error("prune spec not applied")
	}
	if back.ByPath("/cluster0/rack1/node5") == nil {
		t.Error("paths not rebuilt")
	}
}

func TestRoundTripMultiSubsystem(t *testing.T) {
	g := resgraph.NewGraph(0, 100)
	cl := g.MustAddVertex("cluster", -1, 1)
	nd := g.MustAddVertex("node", -1, 1)
	pdu := g.MustAddVertex("pdu", -1, 50)
	if err := g.AddContainment(cl, nd); err != nil {
		t.Fatal(err)
	}
	if err := g.AddContainment(cl, pdu); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(pdu, nd, "power", "supplies_to"); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	pdus := back.ByType("pdu")
	if len(pdus) != 1 || pdus[0].Size != 50 {
		t.Fatalf("pdu = %v", pdus)
	}
	kids := pdus[0].Children("power")
	if len(kids) != 1 || kids[0].Type != "node" {
		t.Fatalf("power edge lost: %v", kids)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not xml", "nope"},
		{"empty", `<graphml xmlns="x"><graph id="G" edgedefault="directed"></graph></graphml>`},
		{"missing type", `<graphml xmlns="x"><graph id="G" edgedefault="directed">
			<node id="n0"><data key="id">0</data></node></graph></graphml>`},
		{"bad size", `<graphml xmlns="x"><graph id="G" edgedefault="directed">
			<node id="n0"><data key="type">a</data><data key="size">junk</data></node></graph></graphml>`},
		{"dup node", `<graphml xmlns="x"><graph id="G" edgedefault="directed">
			<node id="n0"><data key="type">a</data></node>
			<node id="n0"><data key="type">b</data></node></graph></graphml>`},
		{"bad edge", `<graphml xmlns="x"><graph id="G" edgedefault="directed">
			<node id="n0"><data key="type">a</data></node>
			<edge source="n0" target="n9"><data key="subsystem">containment</data><data key="relation">contains</data></edge>
			</graph></graphml>`},
		{"bad props", `<graphml xmlns="x"><graph id="G" edgedefault="directed">
			<node id="n0"><data key="type">a</data><data key="properties">junk</data></node></graph></graphml>`},
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c.data), 0, 100, nil); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestPropsRoundTrip(t *testing.T) {
	in := map[string]string{"a": "1", "b": "x=y-ish", "perfclass": "5"}
	// '=' in values survives because decode splits on the first '='.
	out, err := decodeProps(encodeProps(in))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range in {
		if out[k] != v {
			t.Errorf("prop %q = %q, want %q", k, out[k], v)
		}
	}
	if _, err := decodeProps("=bad"); !errors.Is(err, ErrFormat) {
		t.Errorf("empty key: %v", err)
	}
	if m, err := decodeProps(""); err != nil || len(m) != 0 {
		t.Errorf("empty props: %v %v", m, err)
	}
}
