package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/traverser"
	"fluxion/internal/wal"
)

const testHorizon = int64(1) << 40

// newPair builds the fixed 1-rack/2-node/4-core pair every store test
// drives. Both the original and the recovery fresh-build path use it, so
// genesis replay sees an identical starting graph.
func newPair(t testing.TB) (*fluxion.Fluxion, *sched.Scheduler) {
	t.Helper()
	f, s, err := buildPair()
	if err != nil {
		t.Fatal(err)
	}
	return f, s
}

func buildPair() (*fluxion.Fluxion, *sched.Scheduler, error) {
	g, err := grug.BuildGraph(grug.Small(1, 2, 4, 0, 0), 0, testHorizon,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		return nil, nil, err
	}
	f, err := fluxion.New(fluxion.WithGraph(g), fluxion.WithPolicy("first"))
	if err != nil {
		return nil, nil, err
	}
	s, err := sched.New(f.Traverser(), sched.Conservative)
	if err != nil {
		return nil, nil, err
	}
	return f, s, nil
}

func restoreOpts() []fluxion.Option {
	return []fluxion.Option{
		fluxion.WithPolicy("first"),
		fluxion.WithPruneSpec(resgraph.PruneSpec{resgraph.ALL: {"core", "node"}}),
		fluxion.WithHorizon(testHorizon),
	}
}

func nodeJob(n, cores, dur int64) *jobspec.Jobspec {
	return jobspec.New(dur, jobspec.SlotR(n, jobspec.R("node", 1, jobspec.R("core", cores))))
}

// drive pushes a failure-laden workload through the scheduler: submits,
// starts, reservations, an eviction cascade, a repair, and clock moves.
func drive(t testing.TB, s *sched.Scheduler) {
	t.Helper()
	s.Atomic(func() {
		for id := int64(1); id <= 3; id++ {
			if _, err := s.Submit(id, nodeJob(1, 4, 50*id)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Submit(4, nodeJob(100, 4, 10)); err != nil {
			t.Fatal(err)
		}
		s.Schedule()
	})
	if err := s.ScheduleNodeDown(20, "/cluster0/rack0/node0"); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleNodeUp(45, "/cluster0/rack0/node0"); err != nil {
		t.Fatal(err)
	}
	for s.Step() {
	}
}

// checkpoints returns both layers' serialized state.
func checkpoints(t testing.TB, f *fluxion.Fluxion, s *sched.Scheduler) ([]byte, []byte) {
	t.Helper()
	fc, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return fc, sc
}

func openStore(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	o.Dir = dir
	if o.SyncInterval == 0 {
		o.SyncInterval = -1 // deterministic: every command durable at commit
	}
	if o.Warn == nil {
		o.Warn = os.Stderr
	}
	st, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{SnapshotEvery: 3})
	f, s := newPair(t)
	st.Attach(f, s)
	drive(t, s)
	wantF, wantS := checkpoints(t, f, s)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, Options{})
	defer st2.Close()
	if !st2.Recovered() {
		t.Fatal("reopened store reports no prior state")
	}
	f2, s2, err := st2.Restore(buildPair, restoreOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotF, gotS := checkpoints(t, f2, s2)
	if !bytes.Equal(gotF, wantF) {
		t.Fatalf("resource checkpoint diverged after recovery\nwant:\n%s\ngot:\n%s", wantF, gotF)
	}
	if !bytes.Equal(gotS, wantS) {
		t.Fatalf("scheduler checkpoint diverged after recovery\nwant:\n%s\ngot:\n%s", wantS, gotS)
	}
}

// TestGenesisRecovery recovers from a log with no snapshot at all (the
// run crashed before the first snapshot): replay starts from the fresh
// build and reproduces everything.
func TestGenesisRecovery(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{SnapshotEvery: 1 << 30})
	f, s := newPair(t)
	st.Attach(f, s)
	drive(t, s)
	wantF, wantS := checkpoints(t, f, s)

	// Simulate the crash: copy the synced files, never Close (a Close
	// would write the shutdown snapshot).
	crash := t.TempDir()
	copyDir(t, dir, crash)

	st2 := openStore(t, crash, Options{})
	defer st2.Close()
	if !st2.Recovered() {
		t.Fatal("crash copy reports no prior state")
	}
	if lsn := st2.Log().SnapshotLSN(); lsn != 0 {
		t.Fatalf("crash copy has a snapshot at %d, want none", lsn)
	}
	f2, s2, err := st2.Restore(buildPair, restoreOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotF, gotS := checkpoints(t, f2, s2)
	if !bytes.Equal(gotF, wantF) || !bytes.Equal(gotS, wantS) {
		t.Fatal("genesis replay diverged from the live run")
	}
	_ = st.Close()
}

// TestOutOfBandMutationForcesSnapshot: a store mutation outside any
// journaled command (direct MarkDown on the fluxion handle) cannot be
// replayed, so the next commit must snapshot — and recovery must see it.
func TestOutOfBandMutationForcesSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{SnapshotEvery: 1 << 30})
	f, s := newPair(t)
	st.Attach(f, s)
	drive(t, s)

	// Out-of-band: down a node directly, bypassing the scheduler.
	if _, err := f.MarkDown("/cluster0/rack0/node1"); err != nil {
		t.Fatal(err)
	}
	if !st.extDirty {
		t.Fatal("out-of-band mutation did not mark the snapshot dirty")
	}
	// The next journaled command triggers the snapshot.
	if _, err := s.Submit(50, nodeJob(1, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if st.extDirty {
		t.Fatal("commit did not flush the dirty snapshot")
	}
	snapLSN := st.Log().SnapshotLSN()
	if snapLSN == 0 {
		t.Fatal("no snapshot written")
	}
	wantF, wantS := checkpoints(t, f, s)

	crash := t.TempDir()
	copyDir(t, dir, crash)
	st2 := openStore(t, crash, Options{})
	defer st2.Close()
	f2, s2, err := st2.Restore(buildPair, restoreOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotF, gotS := checkpoints(t, f2, s2)
	if !bytes.Equal(gotF, wantF) || !bytes.Equal(gotS, wantS) {
		t.Fatal("recovery lost the out-of-band mutation")
	}
	_ = st.Close()
}

// TestDegradedMode: a storage fault mid-run disables durability with one
// clear report, the error wraps ErrWAL + ErrInjected, and the scheduler
// finishes the run non-durably.
func TestDegradedMode(t *testing.T) {
	dir := t.TempDir()
	var warn strings.Builder
	st := openStore(t, dir, Options{
		Faults: &wal.FaultPlan{FailSyncAt: 3},
		Warn:   &warn,
	})
	f, s := newPair(t)
	st.Attach(f, s)
	drive(t, s) // must complete despite the injected fsync failure

	if !st.Degraded() {
		t.Fatal("store not degraded after injected fsync failure")
	}
	if err := st.Err(); !errors.Is(err, wal.ErrWAL) || !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("degraded error = %v, want ErrWAL+ErrInjected", err)
	}
	if !strings.Contains(warn.String(), "durability disabled") {
		t.Fatalf("degraded mode not reported: %q", warn.String())
	}
	if strings.Count(warn.String(), "durability disabled") != 1 {
		t.Fatalf("degraded mode reported more than once: %q", warn.String())
	}
	// The run itself finished: completed jobs exist.
	if s.Metrics().Completed == 0 {
		t.Fatal("scheduler did not finish the run in degraded mode")
	}
	if err := st.Close(); !errors.Is(err, wal.ErrWAL) {
		t.Fatalf("Close() = %v, want the sticky wrapped error", err)
	}
}

// TestSnapshotRetirement: frequent snapshots retire old segments so
// reopen replays only the post-snapshot tail.
func TestSnapshotRetirement(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{SnapshotEvery: 2, SegmentBytes: 1, KeepSnapshots: 2})
	f, s := newPair(t)
	st.Attach(f, s)
	drive(t, s)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, Options{})
	defer st2.Close()
	stats := st2.Stats()
	if stats.SnapshotLSN == 0 {
		t.Fatal("no snapshot survived")
	}
	if stats.RecordsReplayed != 0 {
		t.Fatalf("shutdown snapshot should cover the whole log, %d records replayed", stats.RecordsReplayed)
	}
	snaps, err := wal.Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > 2 {
		t.Fatalf("%d snapshots retained, want <= 2", len(snaps))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	spec := nodeJob(2, 3, 77)
	recs := []sched.Rec{
		{Kind: sched.RecSubmit, ID: 7, At: 11, Priority: -2, Spec: spec},
		{Kind: sched.RecSubmit, ID: 8, At: 11, Unsat: true, Spec: spec},
		{Kind: sched.RecCycle},
		{Kind: sched.RecClock, At: 99},
		{Kind: sched.RecStart, ID: 7, At: 12, Duration: 77, Grants: []traverser.Grant{
			{Path: "/cluster0/rack0/node0/core0", Units: 1},
			{Path: "/cluster0/rack0/node0", Units: 0},
		}},
		{Kind: sched.RecReserve, ID: 9, At: 40, Duration: 10, Grants: []traverser.Grant{{Path: "/a", Units: 3}}},
		{Kind: sched.RecConvert, ID: 9, At: 40, Duration: 10},
		{Kind: sched.RecUnreserve, ID: 9},
		{Kind: sched.RecDrop, ID: 9},
		{Kind: sched.RecComplete, ID: 7},
		{Kind: sched.RecRequeue, ID: 7, Retries: 2, LostCore: 123},
		{Kind: sched.RecFail, ID: 7, Retries: 3, LostCore: -1},
		{Kind: sched.RecDown, Path: "/cluster0/rack0/node0"},
		{Kind: sched.RecUp, Path: "/cluster0/rack0/node0"},
		{Kind: sched.RecEvent, At: 60, Down: true, Path: "/n"},
		{Kind: sched.RecEventPop, At: 60, Down: false, Path: "/n"},
		{Kind: sched.RecCommit},
	}
	var buf []byte
	var got sched.Rec
	for _, want := range recs {
		buf = appendRec(buf[:0], &want)
		if err := decodeRec(byte(want.Kind), buf, &got); err != nil {
			t.Fatalf("%s: decode: %v", want.Kind, err)
		}
		// Spec pointers differ; compare canonical YAML, then blank them.
		if (want.Spec == nil) != (got.Spec == nil) {
			t.Fatalf("%s: spec presence mismatch", want.Kind)
		}
		if want.Spec != nil && !bytes.Equal(want.Spec.YAML(), got.Spec.YAML()) {
			t.Fatalf("%s: spec did not round-trip", want.Kind)
		}
		w := want
		w.Spec, got.Spec = nil, nil
		if want.Kind == sched.RecCommit {
			w = sched.Rec{Kind: sched.RecCommit} // commit frames carry no payload fields
		}
		if len(got.Grants) == 0 && len(w.Grants) == 0 {
			got.Grants, w.Grants = nil, nil // normalize nil vs empty
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("%s: round-trip mismatch\nwant %+v\ngot  %+v", want.Kind, w, got)
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	spec := nodeJob(1, 2, 30)
	rec := sched.Rec{Kind: sched.RecSubmit, ID: 3, At: 5, Spec: spec}
	good := appendRec(nil, &rec)

	var out sched.Rec
	// Bit flip inside the spec body: the spec hash must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-2] ^= 0x40
	if err := decodeRec(byte(rec.Kind), bad, &out); !errors.Is(err, wal.ErrWAL) {
		t.Fatalf("flipped spec byte: err = %v, want ErrWAL", err)
	}
	// Truncations at every boundary: error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if err := decodeRec(byte(rec.Kind), good[:cut], &out); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		} else if !errors.Is(err, wal.ErrWAL) {
			t.Fatalf("truncation at %d: err = %v, want ErrWAL", cut, err)
		}
	}
	// Unknown kind byte.
	if err := decodeRec(200, nil, &out); !errors.Is(err, wal.ErrWAL) {
		t.Fatalf("unknown kind: err = %v, want ErrWAL", err)
	}
}

func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
