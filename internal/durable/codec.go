package durable

// Binary codec for sched journal records. One journal record becomes one
// WAL frame: the frame's type byte is the RecKind, the payload encodes
// the record's fields in a fixed varint layout. RecSubmit additionally
// carries the job's canonical jobspec YAML guarded by an FNV-1a hash, so
// a bit flip inside the spec body is caught even though the frame CRC
// already covers the payload (the hash also travels into snapshots and
// cross-checks the spec table there).

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"fluxion/internal/jobspec"
	"fluxion/internal/sched"
	"fluxion/internal/traverser"
	"fluxion/internal/wal"
)

// recFlag bits in the payload's flag byte.
const (
	recFlagUnsat = 1 << iota
	recFlagDown
	recFlagSpec
)

// specHash is the integrity hash over a canonical jobspec document.
func specHash(yaml []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(yaml)
	return h.Sum64()
}

// appendRec encodes r into buf (appending) and returns the extended
// slice. With a warm buffer the encode path does not allocate, except for
// RecSubmit's one-time YAML rendering.
func appendRec(buf []byte, r *sched.Rec) []byte {
	buf = binary.AppendVarint(buf, r.ID)
	buf = binary.AppendVarint(buf, r.At)
	buf = binary.AppendVarint(buf, r.Duration)
	buf = binary.AppendVarint(buf, int64(r.Priority))
	var flags byte
	if r.Unsat {
		flags |= recFlagUnsat
	}
	if r.Down {
		flags |= recFlagDown
	}
	var yaml []byte
	if r.Kind == sched.RecSubmit && r.Spec != nil {
		yaml = r.Spec.YAML()
		flags |= recFlagSpec
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(r.Path)))
	buf = append(buf, r.Path...)
	buf = binary.AppendVarint(buf, int64(r.Retries))
	buf = binary.AppendVarint(buf, r.LostCore)
	buf = binary.AppendUvarint(buf, uint64(len(r.Grants)))
	for _, g := range r.Grants {
		buf = binary.AppendUvarint(buf, uint64(len(g.Path)))
		buf = append(buf, g.Path...)
		buf = binary.AppendVarint(buf, g.Units)
	}
	if flags&recFlagSpec != 0 {
		buf = binary.AppendUvarint(buf, specHash(yaml))
		buf = binary.AppendUvarint(buf, uint64(len(yaml)))
		buf = append(buf, yaml...)
	}
	return buf
}

// recReader walks an encoded payload.
type recReader struct {
	data []byte
	err  error
}

func (p *recReader) varint() int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.data)
	if n <= 0 {
		p.err = fmt.Errorf("%w: truncated varint in record payload", wal.ErrWAL)
		return 0
	}
	p.data = p.data[n:]
	return v
}

func (p *recReader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.data)
	if n <= 0 {
		p.err = fmt.Errorf("%w: truncated uvarint in record payload", wal.ErrWAL)
		return 0
	}
	p.data = p.data[n:]
	return v
}

func (p *recReader) byte() byte {
	if p.err != nil {
		return 0
	}
	if len(p.data) < 1 {
		p.err = fmt.Errorf("%w: truncated record payload", wal.ErrWAL)
		return 0
	}
	b := p.data[0]
	p.data = p.data[1:]
	return b
}

func (p *recReader) bytes(n uint64) []byte {
	if p.err != nil {
		return nil
	}
	if uint64(len(p.data)) < n {
		p.err = fmt.Errorf("%w: truncated record payload", wal.ErrWAL)
		return nil
	}
	b := p.data[:n]
	p.data = p.data[n:]
	return b
}

// decodeRec decodes one WAL frame (type byte + payload) into r. Errors
// wrap wal.ErrWAL; a RecSubmit whose spec bytes fail their hash or do not
// parse is an error, never a panic.
func decodeRec(typ byte, payload []byte, r *sched.Rec) error {
	kind := sched.RecKind(typ)
	if kind == sched.RecInvalid || kind > sched.RecUnquarantine {
		return fmt.Errorf("%w: unknown record kind %d", wal.ErrWAL, typ)
	}
	*r = sched.Rec{Kind: kind}
	if kind == sched.RecCommit {
		return nil
	}
	p := recReader{data: payload}
	r.ID = p.varint()
	r.At = p.varint()
	r.Duration = p.varint()
	r.Priority = int(p.varint())
	flags := p.byte()
	r.Unsat = flags&recFlagUnsat != 0
	r.Down = flags&recFlagDown != 0
	r.Path = string(p.bytes(p.uvarint()))
	r.Retries = int(p.varint())
	r.LostCore = p.varint()
	if n := p.uvarint(); n > 0 && p.err == nil {
		if n > uint64(len(p.data)) {
			return fmt.Errorf("%w: grant count %d exceeds payload", wal.ErrWAL, n)
		}
		r.Grants = make([]traverser.Grant, 0, n)
		for i := uint64(0); i < n && p.err == nil; i++ {
			path := string(p.bytes(p.uvarint()))
			r.Grants = append(r.Grants, traverser.Grant{Path: path, Units: p.varint()})
		}
	}
	if flags&recFlagSpec != 0 {
		sum := p.uvarint()
		yaml := p.bytes(p.uvarint())
		if p.err == nil {
			if specHash(yaml) != sum {
				return fmt.Errorf("%w: jobspec hash mismatch in submit of job %d", wal.ErrWAL, r.ID)
			}
			spec, err := jobspec.ParseYAML(yaml)
			if err != nil {
				return fmt.Errorf("%w: jobspec in submit of job %d: %v", wal.ErrWAL, r.ID, err)
			}
			r.Spec = spec
		}
	}
	if p.err != nil {
		return p.err
	}
	if len(p.data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in %s record", wal.ErrWAL, len(p.data), kind)
	}
	return nil
}
