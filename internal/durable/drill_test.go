package durable_test

// The crash-drill property test: the central acceptance gate of the
// durability subsystem. It runs a fault-injected simulation with the WAL
// enabled, then simulates a crash at EVERY record boundary in the
// resulting log (plus sampled torn mid-frame tails), recovers each
// truncated copy, resumes the run, and requires the final state of both
// layers — the resource-graph checkpoint and the scheduler checkpoint —
// to be byte-identical to the uncrashed run. It lives outside package
// durable so it can drive the full fluxion-sim pipeline via simcli.

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fluxion/internal/chaos"
	"fluxion/internal/grug"
	"fluxion/internal/sched"
	"fluxion/internal/simcli"
	"fluxion/internal/trace"
	"fluxion/internal/wal"
)

// drillConfig is the shared run shape: small cluster, fault injection
// on, full log retention. The sync interval is long on purpose: the
// drill simulates crashes by truncating a finished log copy, so
// per-commit fsync would only slow the many re-runs without changing a
// single byte of what they see (Close flushes everything); the
// fsync/torn-write failure paths get their own fault-injection tests.
func drillConfig(policy sched.QueuePolicy, dir string) simcli.Config {
	return simcli.Config{
		Recipe:          grug.Small(1, 2, 4, 0, 0),
		MatchPolicy:     "first",
		QueuePolicy:     policy,
		MTBF:            1500,
		MTTR:            80,
		FaultSeed:       7,
		MaxRetries:      3,
		WALDir:          dir,
		WALSyncInterval: time.Hour,
		SnapshotEvery:   6,    // several mid-run snapshots: drills cross them
		WALKeepAll:      true, // retain full history so every boundary is drillable
	}
}

func finalState(res *simcli.Result) (fc, sc []byte, err error) {
	if fc, err = res.Fluxion.Checkpoint(); err != nil {
		return nil, nil, err
	}
	if sc, err = res.Scheduler.Checkpoint(); err != nil {
		return nil, nil, err
	}
	return fc, sc, nil
}

func TestCrashDrillEveryBoundary(t *testing.T) {
	jobs := trace.Synthesize(10, 2, 4, 42)
	for _, policy := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			t.Parallel()
			base := filepath.Join(t.TempDir(), "wal")
			res, err := simcli.Run(drillConfig(policy, base), jobs, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			wantF, wantS, err := finalState(res)
			if err != nil {
				t.Fatal(err)
			}
			frames, err := wal.Frames(base)
			if err != nil {
				t.Fatal(err)
			}
			if len(frames) < 20 {
				t.Fatalf("only %d frames in the base log; the drill needs a real workload", len(frames))
			}

			// -short samples boundaries (always including the last);
			// the full sweep drills every single one.
			stride := 1
			if testing.Short() {
				stride = 7
			}
			// Each boundary run is fully isolated (own dirs, own
			// scheduler), so drill them concurrently.
			var (
				mu                sync.Mutex
				replayedSomething bool
				snapshotUsed      bool
				sem               = make(chan struct{}, runtime.GOMAXPROCS(0))
				wg                sync.WaitGroup
			)
			for i, fr := range frames {
				if i%stride != 0 && i != len(frames)-1 {
					continue
				}
				i, fr := i, fr
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					crash, err := crashCopy(t, base, fr.Path, fr.End, fr.LSN)
					if err != nil {
						t.Errorf("boundary %d (lsn %d): %v", i, fr.LSN, err)
						return
					}
					rres, err := simcli.Run(drillConfig(policy, crash), jobs, io.Discard)
					if err != nil {
						t.Errorf("boundary %d (lsn %d): %v", i, fr.LSN, err)
						return
					}
					gotF, gotS, err := finalState(rres)
					if err != nil {
						t.Errorf("boundary %d (lsn %d): %v", i, fr.LSN, err)
						return
					}
					if !bytes.Equal(gotF, wantF) {
						t.Errorf("boundary %d (lsn %d, %s): resource state diverged", i, fr.LSN, sched.RecKind(fr.Type))
						return
					}
					if !bytes.Equal(gotS, wantS) {
						t.Errorf("boundary %d (lsn %d, %s): scheduler state diverged", i, fr.LSN, sched.RecKind(fr.Type))
						return
					}
					mu.Lock()
					replayedSomething = replayedSomething || rres.Recovery.RecordsReplayed > 0
					snapshotUsed = snapshotUsed || rres.Recovery.SnapshotLSN > 0
					mu.Unlock()

					// Sampled torn tails: a crash mid-frame must truncate
					// the torn bytes and recover to the previous boundary.
					if i%5 == 0 && fr.End-fr.Start > 2 {
						torn, err := crashCopy(t, base, fr.Path, fr.End-1, fr.LSN)
						if err != nil {
							t.Errorf("torn frame %d (lsn %d): %v", i, fr.LSN, err)
							return
						}
						tres, err := simcli.Run(drillConfig(policy, torn), jobs, io.Discard)
						if err != nil {
							t.Errorf("torn frame %d (lsn %d): %v", i, fr.LSN, err)
							return
						}
						gotF, gotS, err = finalState(tres)
						if err != nil {
							t.Errorf("torn frame %d (lsn %d): %v", i, fr.LSN, err)
							return
						}
						if !bytes.Equal(gotF, wantF) || !bytes.Equal(gotS, wantS) {
							t.Errorf("torn frame %d (lsn %d): state diverged", i, fr.LSN)
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if !replayedSomething {
				t.Fatal("no drill iteration exercised record replay")
			}
			if !snapshotUsed {
				t.Fatal("no drill iteration recovered from a snapshot")
			}
		})
	}
}

// TestDrillDecisionParity re-runs the recovered simulation with the
// timeline on and checks the job-level decisions (start/end times),
// not just checkpoint bytes, for one mid-log boundary.
func TestDrillDecisionParity(t *testing.T) {
	jobs := trace.Synthesize(10, 2, 4, 11)
	base := filepath.Join(t.TempDir(), "wal")
	var want bytes.Buffer
	cfg := drillConfig(sched.Conservative, base)
	cfg.Timeline = true
	res, err := simcli.Run(cfg, jobs, &want)
	if err != nil {
		t.Fatal(err)
	}
	wantF, wantS, err := finalState(res)
	if err != nil {
		t.Fatal(err)
	}

	frames, err := wal.Frames(base)
	if err != nil {
		t.Fatal(err)
	}
	fr := frames[len(frames)/2]
	crash, err := crashCopy(t, base, fr.Path, fr.End, fr.LSN)
	if err != nil {
		t.Fatal(err)
	}
	cfg = drillConfig(sched.Conservative, crash)
	cfg.Timeline = true
	var got bytes.Buffer
	rres, err := simcli.Run(cfg, jobs, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !rres.Recovered {
		t.Fatal("mid-log crash copy did not recover")
	}
	gotF, gotS, err := finalState(rres)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotF, wantF) || !bytes.Equal(gotS, wantS) {
		t.Fatal("recovered run diverged from uncrashed run")
	}
	wantTL, gotTL := timelineLines(want.String()), timelineLines(got.String())
	if wantTL != gotTL {
		t.Fatalf("job timelines diverged\nuncrashed:\n%s\nrecovered:\n%s", wantTL, gotTL)
	}
	wm, gm := res.Metrics, rres.Metrics
	// TotalMatch is wall-clock; the node-seconds tallies accrue from live
	// allocations, which jobs completed before the crash no longer have.
	// All simulated decisions (makespan, waits, requeues, completions)
	// must match exactly.
	wm.TotalMatch, gm.TotalMatch = 0, 0
	wm.NodeSecondsUsed, gm.NodeSecondsUsed = 0, 0
	wm.NodeSecondsTotal, gm.NodeSecondsTotal = 0, 0
	if wm != gm {
		t.Fatalf("metrics diverged: uncrashed %+v, recovered %+v", wm, gm)
	}
}

// timelineLines extracts the per-job decision rows from a run report:
// lines whose first field is a job ID. The nodes column (field 2) is
// dropped — jobs that completed before the crash are restored without a
// live allocation, so their node count reads zero after recovery; every
// scheduling decision (submit/start/end/wait/state) must still match.
func timelineLines(out string) string {
	var b strings.Builder
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) != 7 {
			continue
		}
		if _, err := strconv.ParseInt(f[0], 10, 64); err != nil {
			continue
		}
		b.WriteString(f[0] + " " + strings.Join(f[2:], " ") + "\n")
	}
	return b.String()
}

// crashCopy clones the log directory and truncates the clone at the
// given frame boundary, dropping segments and snapshots past it.
// Goroutine-safe (t.TempDir and t.Error are; t.Fatal would not be).
func crashCopy(t *testing.T, src, framePath string, at int64, boundLSN uint64) (string, error) {
	dst := filepath.Join(t.TempDir(), "crash")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return "", err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return "", err
		}
	}
	if err := wal.TruncateAt(dst, filepath.Join(dst, filepath.Base(framePath)), at, boundLSN); err != nil {
		return "", err
	}
	return dst, nil
}

// TestCrashDrillChaosQuarantine composes the chaos harness with the WAL:
// a run whose jobs panic and submit malformed specs is crashed at
// sampled record boundaries and recovered. Quarantine must survive
// recovery — every panicking job is quarantined in the recovered run,
// never resurrected into the pending queue — and the final state of
// both layers must converge byte-for-byte with the uncrashed run.
func TestCrashDrillChaosQuarantine(t *testing.T) {
	jobs := trace.Synthesize(14, 2, 4, 23)
	plan := &chaos.Plan{Seed: 13, PanicFrac: 0.25, MalformedFrac: 0.15}
	mkCfg := func(dir string) simcli.Config {
		cfg := drillConfig(sched.Conservative, dir)
		cfg.Chaos = plan
		return cfg
	}
	base := filepath.Join(t.TempDir(), "wal")
	var want bytes.Buffer
	cfg := mkCfg(base)
	cfg.Timeline = true
	res, err := simcli.Run(cfg, jobs, &want)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler.Stats().Quarantined == 0 {
		t.Fatal("chaos plan quarantined nothing; the drill proves nothing")
	}
	wantF, wantS, err := finalState(res)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := wal.Frames(base)
	if err != nil {
		t.Fatal(err)
	}
	sawQuarantineRec := false
	for _, fr := range frames {
		if sched.RecKind(fr.Type) == sched.RecQuarantine {
			sawQuarantineRec = true
		}
	}
	if !sawQuarantineRec {
		t.Fatal("no RecQuarantine frame in the log")
	}

	stride := 3
	if testing.Short() {
		stride = 11
	}
	for i, fr := range frames {
		if i%stride != 0 && i != len(frames)-1 {
			continue
		}
		crash, err := crashCopy(t, base, fr.Path, fr.End, fr.LSN)
		if err != nil {
			t.Fatalf("boundary %d (lsn %d): %v", i, fr.LSN, err)
		}
		ccfg := mkCfg(crash)
		ccfg.Timeline = true
		var got bytes.Buffer
		rres, err := simcli.Run(ccfg, jobs, &got)
		if err != nil {
			t.Fatalf("boundary %d (lsn %d): %v", i, fr.LSN, err)
		}
		gotF, gotS, err := finalState(rres)
		if err != nil {
			t.Fatalf("boundary %d (lsn %d): %v", i, fr.LSN, err)
		}
		if !bytes.Equal(gotF, wantF) || !bytes.Equal(gotS, wantS) {
			t.Fatalf("boundary %d (lsn %d, %s): recovered state diverged",
				i, fr.LSN, sched.RecKind(fr.Type))
		}
		if wantTL, gotTL := timelineLines(want.String()), timelineLines(got.String()); wantTL != gotTL {
			t.Fatalf("boundary %d: timelines diverged\nuncrashed:\n%s\nrecovered:\n%s", i, wantTL, gotTL)
		}
		// Belt and suspenders beyond byte equality: poisoned jobs are
		// quarantined, and quarantine never leaks back into the queue.
		for _, j := range jobs {
			rj, ok := rres.Scheduler.Job(j.ID)
			switch {
			case plan.Malformed(j.ID):
				if ok {
					t.Fatalf("boundary %d: malformed job %d present after recovery", i, j.ID)
				}
			case plan.Panics(j.ID):
				if !ok || rj.State != sched.StateQuarantined {
					t.Fatalf("boundary %d: panicking job %d not quarantined after recovery", i, j.ID)
				}
			}
		}
	}
}
