// Package durable is the durability layer over internal/wal: it turns
// the scheduler's effect journal (internal/sched's Rec stream) into an
// append-only write-ahead log and the paired fluxion/sched checkpoints
// into its snapshots, giving the simulator crash-consistent recovery.
//
// The scheme is snapshot-plus-log. Every state-mutating scheduler
// operation emits journal records; the store frames each record into the
// WAL before the next command begins, marking command boundaries with
// committed RecCommit frames. Every SnapshotEvery commands (or whenever
// an out-of-command store mutation is observed on the delta stream, which
// replay cannot reproduce) the store writes a snapshot — a JSON document
// bundling the fluxion checkpoint (graph + allocations), the scheduler
// checkpoint (queue, clock, events), and the canonical jobspec of every
// non-terminal job — and the WAL retires segments the snapshot covers.
//
// Recovery opens the newest valid snapshot, rebuilds both layers from it
// (or builds them fresh when the log starts at genesis), replays the
// surviving record suffix through sched.Apply, and converges to
// byte-identical Checkpoint() output versus an uncrashed run: the
// crash-drill test enforces this at every record boundary.
//
// Storage faults degrade, never corrupt: the first failed write, fsync,
// or snapshot poisons the log, the store reports it once, detaches the
// journal sink, and the scheduler continues non-durably.
package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"fluxion"
	"fluxion/internal/jobspec"
	"fluxion/internal/sched"
	"fluxion/internal/wal"
)

// DefaultSnapshotEvery is the default command-unit count between
// automatic snapshots.
const DefaultSnapshotEvery = 4096

// Options parameterizes Open.
type Options struct {
	// Dir is the durability directory (created if missing).
	Dir string
	// SyncInterval is the WAL group-commit fsync cadence: 0 selects the
	// WAL default (10ms), negative syncs on every commit frame.
	SyncInterval time.Duration
	// SnapshotEvery is how many command units elapse between automatic
	// snapshots (0 = DefaultSnapshotEvery).
	SnapshotEvery int
	// SegmentBytes / KeepSnapshots / KeepAll pass through to wal.Options
	// (KeepAll retains every segment and snapshot — archival/drill mode).
	SegmentBytes  int64
	KeepSnapshots int
	KeepAll       bool
	// Faults injects storage failures for testing (nil = real files).
	Faults *wal.FaultPlan
	// Warn receives the one-line degraded-mode report (default stderr).
	Warn io.Writer
}

// Store couples a WAL with a live fluxion + scheduler pair.
type Store struct {
	log  *wal.Log
	f    *fluxion.Fluxion
	s    *sched.Scheduler
	warn io.Writer

	buf       []byte
	snapEvery int
	sinceSnap int
	extDirty  bool
	degraded  bool
	err       error
	untap     func()
	recovered bool
}

// Open opens (or creates) the durability directory and scans it for
// prior state. Check Recovered to decide between Restore and a fresh
// build, then wire the live pair with Attach.
func Open(o Options) (*Store, error) {
	wo := wal.Options{
		SyncInterval:  o.SyncInterval,
		SegmentBytes:  o.SegmentBytes,
		KeepSnapshots: o.KeepSnapshots,
		KeepAll:       o.KeepAll,
	}
	if o.Faults != nil {
		wo.NewSyncer = o.Faults.NewSyncer
	}
	log, err := wal.Open(o.Dir, wo)
	if err != nil {
		return nil, err
	}
	st := &Store{
		log:       log,
		warn:      o.Warn,
		snapEvery: o.SnapshotEvery,
	}
	if st.snapEvery <= 0 {
		st.snapEvery = DefaultSnapshotEvery
	}
	if st.warn == nil {
		st.warn = os.Stderr
	}
	_, _, hasSnap := log.Snapshot()
	tail := 0
	_ = log.Replay(func(wal.Record) error { tail++; return nil })
	st.recovered = hasSnap || tail > 0
	return st, nil
}

// Recovered reports whether Open found prior durable state to restore.
func (st *Store) Recovered() bool { return st.recovered }

// Stats returns what recovery scanned, replayed, and truncated.
func (st *Store) Stats() wal.RecoveryStats { return st.log.Stats() }

// Degraded reports whether a storage fault disabled durability.
func (st *Store) Degraded() bool { return st.degraded }

// Err returns the sticky storage error (wrapping wal.ErrWAL), if any.
func (st *Store) Err() error {
	if st.err != nil {
		return st.err
	}
	return st.log.Err()
}

// Log exposes the underlying WAL (tests, inspection).
func (st *Store) Log() *wal.Log { return st.log }

// snapshotDoc is the snapshot payload: both checkpoint layers plus the
// canonical jobspec (and integrity hash) of every non-terminal job, which
// sched.Resume needs to recompile the queue.
type snapshotDoc struct {
	Version  int                  `json:"version"`
	Resource json.RawMessage      `json:"resource"`
	Sched    json.RawMessage      `json:"sched"`
	Specs    map[int64]snapedSpec `json:"specs,omitempty"`
}

type snapedSpec struct {
	Hash uint64 `json:"hash"`
	YAML string `json:"yaml"`
}

// Restore rebuilds the fluxion + scheduler pair from the recovered
// state: the newest snapshot when one exists, otherwise a fresh build
// (the log starts at genesis), then the replay of every surviving journal
// record. fresh must construct the pair exactly as the original run did;
// fopts configure the snapshot restore path (match policy, prune spec,
// horizon) and sopts the scheduler resume (incremental engine, depth).
func (st *Store) Restore(
	fresh func() (*fluxion.Fluxion, *sched.Scheduler, error),
	fopts []fluxion.Option,
	sopts []sched.SchedOption,
) (*fluxion.Fluxion, *sched.Scheduler, error) {
	var f *fluxion.Fluxion
	var s *sched.Scheduler
	if _, payload, ok := st.log.Snapshot(); ok {
		var doc snapshotDoc
		if err := json.Unmarshal(payload, &doc); err != nil {
			return nil, nil, fmt.Errorf("%w: snapshot: %v", wal.ErrWAL, err)
		}
		if doc.Version != 1 {
			return nil, nil, fmt.Errorf("%w: unsupported snapshot version %d", wal.ErrWAL, doc.Version)
		}
		var err error
		if f, err = fluxion.Restore(doc.Resource, fopts...); err != nil {
			return nil, nil, fmt.Errorf("%w: snapshot resource state: %v", wal.ErrWAL, err)
		}
		specs := make(map[int64]*jobspec.Jobspec, len(doc.Specs))
		for id, ss := range doc.Specs {
			if specHash([]byte(ss.YAML)) != ss.Hash {
				return nil, nil, fmt.Errorf("%w: jobspec hash mismatch for job %d in snapshot", wal.ErrWAL, id)
			}
			spec, err := jobspec.ParseYAML([]byte(ss.YAML))
			if err != nil {
				return nil, nil, fmt.Errorf("%w: jobspec of job %d in snapshot: %v", wal.ErrWAL, id, err)
			}
			specs[id] = spec
		}
		if s, err = sched.Resume(f.Traverser(), doc.Sched, specs, sopts...); err != nil {
			return nil, nil, fmt.Errorf("%w: snapshot scheduler state: %v", wal.ErrWAL, err)
		}
	} else {
		var err error
		if f, s, err = fresh(); err != nil {
			return nil, nil, err
		}
	}

	var rec sched.Rec
	err := st.log.Replay(func(r wal.Record) error {
		if err := decodeRec(r.Type, r.Payload, &rec); err != nil {
			return fmt.Errorf("record %d: %w", r.LSN, err)
		}
		if rec.Kind == sched.RecCommit {
			return nil
		}
		if err := s.Apply(&rec); err != nil {
			return fmt.Errorf("%w: record %d: %v", wal.ErrWAL, r.LSN, err)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Blocking signatures died with the crashed process; re-attempt
	// everything on the next cycle.
	s.ForceFullWake()
	return f, s, nil
}

// Attach wires the store into a live pair: the scheduler's journal sink
// feeds the WAL and the delta stream is tapped to catch store mutations
// made outside any journaled command (those force a snapshot, since
// replay cannot reproduce them).
func (st *Store) Attach(f *fluxion.Fluxion, s *sched.Scheduler) {
	st.f, st.s = f, s
	st.untap = f.TapDeltas(st.observeDelta)
	s.SetJournal(st.record)
}

// observeDelta runs on every published capacity delta. Deltas inside a
// journal command are reproduced by replay; anything else (direct
// Cancel/Grow/Shrink/MarkDown on the fluxion handle) is out-of-band and
// marks the snapshot dirty.
func (st *Store) observeDelta(fluxion.ResourceDelta) {
	if st.s == nil || !st.s.InCommand() {
		st.extDirty = true
	}
}

// record is the journal sink: one WAL frame per record, commit-flagged at
// command boundaries, with snapshot scheduling at commits.
func (st *Store) record(r *sched.Rec) {
	if st.degraded {
		return
	}
	if r.Kind == sched.RecCommit {
		if _, err := st.log.Append(byte(r.Kind), true, nil); err != nil {
			st.degrade(err)
			return
		}
		st.sinceSnap++
		if st.sinceSnap >= st.snapEvery || st.extDirty {
			st.snapshot()
		}
		return
	}
	st.buf = appendRec(st.buf[:0], r)
	if _, err := st.log.Append(byte(r.Kind), false, st.buf); err != nil {
		st.degrade(err)
	}
}

// Snapshot forces a snapshot now (clean shutdowns and tests; the hot path
// snapshots automatically at commit boundaries).
func (st *Store) Snapshot() error {
	if st.degraded {
		return st.Err()
	}
	st.snapshot()
	return st.Err()
}

func (st *Store) snapshot() {
	doc, err := st.encodeSnapshot()
	if err != nil {
		st.degrade(err)
		return
	}
	if err := st.log.SaveSnapshot(doc); err != nil {
		st.degrade(err)
		return
	}
	st.sinceSnap, st.extDirty = 0, false
}

func (st *Store) encodeSnapshot() ([]byte, error) {
	res, err := st.f.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("%w: resource checkpoint: %v", wal.ErrWAL, err)
	}
	sch, err := st.s.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("%w: scheduler checkpoint: %v", wal.ErrWAL, err)
	}
	doc := snapshotDoc{Version: 1, Resource: res, Sched: sch}
	for id, job := range st.s.Jobs() {
		switch job.State {
		case sched.StateCompleted, sched.StateFailed, sched.StateUnsatisfiable:
			continue
		}
		if job.Spec == nil {
			continue
		}
		if doc.Specs == nil {
			doc.Specs = make(map[int64]snapedSpec)
		}
		yaml := job.Spec.YAML()
		doc.Specs[id] = snapedSpec{Hash: specHash(yaml), YAML: string(yaml)}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot encode: %v", wal.ErrWAL, err)
	}
	return out, nil
}

// degrade poisons the store after a storage fault: report once, detach
// from the live pair, and let the scheduler continue non-durably.
func (st *Store) degrade(err error) {
	if st.degraded {
		return
	}
	st.degraded = true
	st.err = err
	fmt.Fprintf(st.warn, "wal: durability disabled: %v\n", err)
	st.detach()
}

func (st *Store) detach() {
	if st.s != nil {
		st.s.SetJournal(nil)
	}
	if st.untap != nil {
		st.untap()
		st.untap = nil
	}
}

// Close snapshots any un-snapshotted tail (making the next open replay
// nothing) and closes the WAL. The sticky storage error, if any, is
// returned — a degraded store closes cleanly but reports why.
func (st *Store) Close() error {
	if !st.degraded && st.s != nil && (st.sinceSnap > 0 || st.extDirty) {
		st.snapshot()
	}
	st.detach()
	cerr := st.log.Close()
	if err := st.Err(); err != nil {
		return err
	}
	return cerr
}
