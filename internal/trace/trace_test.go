package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Nodes: 4, CoresPerNode: 36, Duration: 600},
		{ID: 2, Submit: 10, Nodes: 1, CoresPerNode: 36, MemPerNode: 64, GPUsPerNode: 2, Duration: 60, Priority: 5},
	}
	var buf bytes.Buffer
	if err := Write(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, jobs) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, jobs)
	}
}

func TestJobspecExpansion(t *testing.T) {
	j := Job{ID: 1, Nodes: 2, CoresPerNode: 8, MemPerNode: 32, GPUsPerNode: 1, Duration: 300}
	js := j.Jobspec()
	if err := js.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := js.TotalCounts()
	want := map[string]int64{"node": 2, "core": 16, "memory": 64, "gpu": 2}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("counts = %v", counts)
	}
	if js.Duration != 300 || !js.Resources[0].Exclusive {
		t.Fatalf("jobspec = %+v", js.Resources[0])
	}
	// Minimal job: no memory/gpu vertices.
	js2 := Job{ID: 2, Nodes: 1, CoresPerNode: 4, Duration: 10}.Jobspec()
	if len(js2.Resources[0].With) != 1 {
		t.Fatalf("minimal with = %+v", js2.Resources[0].With)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad json", "not json\n"},
		{"zero id", `{"id":0,"nodes":1,"cores_per_node":1,"duration":1}` + "\n"},
		{"zero nodes", `{"id":1,"nodes":0,"cores_per_node":1,"duration":1}` + "\n"},
		{"zero cores", `{"id":1,"nodes":1,"cores_per_node":0,"duration":1}` + "\n"},
		{"zero duration", `{"id":1,"nodes":1,"cores_per_node":1,"duration":0}` + "\n"},
		{"negative submit", `{"id":1,"submit":-5,"nodes":1,"cores_per_node":1,"duration":1}` + "\n"},
		{"dup id", `{"id":1,"nodes":1,"cores_per_node":1,"duration":1}
{"id":1,"nodes":1,"cores_per_node":1,"duration":1}
`},
		{"decreasing submit", `{"id":1,"submit":10,"nodes":1,"cores_per_node":1,"duration":1}
{"id":2,"submit":5,"nodes":1,"cores_per_node":1,"duration":1}
`},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	// Blank lines are skipped.
	jobs, err := Read(strings.NewReader("\n" + `{"id":1,"nodes":1,"cores_per_node":1,"duration":1}` + "\n\n"))
	if err != nil || len(jobs) != 1 {
		t.Fatalf("blank lines: %v, %v", jobs, err)
	}
}

func TestWriteValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Job{{ID: 1, Nodes: 0, CoresPerNode: 1, Duration: 1}}); !errors.Is(err, ErrFormat) {
		t.Fatalf("Write invalid: %v", err)
	}
}

func TestSynthesize(t *testing.T) {
	jobs := Synthesize(50, 16, 36, 7)
	if len(jobs) != 50 {
		t.Fatalf("len = %d", len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Submit != 0 || j.CoresPerNode != 36 || j.Nodes > 16 {
			t.Fatalf("job = %+v", j)
		}
	}
	again := Synthesize(50, 16, 36, 7)
	if !reflect.DeepEqual(jobs, again) {
		t.Fatal("synthesis not deterministic")
	}
}
