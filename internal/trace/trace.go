// Package trace defines the job-trace file format consumed by fluxion-sim:
// one JSON object per line, each describing a whole-node job —
//
//	{"id":1,"submit":0,"nodes":4,"cores_per_node":36,"duration":600,"priority":0}
//
// The shorthand fields expand to a canonical jobspec (exclusive nodes with
// cores, and optionally memory/GPUs per node). Traces are the interchange
// between the synthetic workload generator and the simulator, standing in
// for production queue snapshots like the paper's quartz trace (§6.3).
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"fluxion/internal/jobspec"
	"fluxion/internal/workload"
)

// ErrFormat is wrapped by all decode errors.
var ErrFormat = errors.New("trace: bad format")

// Job is one trace record.
type Job struct {
	ID           int64 `json:"id"`
	Submit       int64 `json:"submit"`
	Nodes        int64 `json:"nodes"`
	CoresPerNode int64 `json:"cores_per_node"`
	MemPerNode   int64 `json:"mem_per_node,omitempty"`
	GPUsPerNode  int64 `json:"gpus_per_node,omitempty"`
	Duration     int64 `json:"duration"`
	Priority     int   `json:"priority,omitempty"`
}

// Validate checks the record for schedulable values.
func (j Job) Validate() error {
	switch {
	case j.ID <= 0:
		return fmt.Errorf("%w: job id %d", ErrFormat, j.ID)
	case j.Nodes <= 0:
		return fmt.Errorf("%w: job %d: nodes %d", ErrFormat, j.ID, j.Nodes)
	case j.CoresPerNode <= 0:
		return fmt.Errorf("%w: job %d: cores_per_node %d", ErrFormat, j.ID, j.CoresPerNode)
	case j.Duration <= 0:
		return fmt.Errorf("%w: job %d: duration %d", ErrFormat, j.ID, j.Duration)
	case j.Submit < 0:
		return fmt.Errorf("%w: job %d: submit %d", ErrFormat, j.ID, j.Submit)
	}
	return nil
}

// Jobspec expands the record to its canonical request graph.
func (j Job) Jobspec() *jobspec.Jobspec {
	per := []*jobspec.Resource{jobspec.R("core", j.CoresPerNode)}
	if j.MemPerNode > 0 {
		per = append(per, jobspec.R("memory", j.MemPerNode))
	}
	if j.GPUsPerNode > 0 {
		per = append(per, jobspec.R("gpu", j.GPUsPerNode))
	}
	return jobspec.New(j.Duration, jobspec.RX("node", j.Nodes, per...))
}

// Read parses a JSONL trace, validating every record and requiring unique
// IDs and non-decreasing submit times.
func Read(r io.Reader) ([]Job, error) {
	var out []Job
	seen := make(map[int64]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	lastSubmit := int64(0)
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var j Job
		if err := json.Unmarshal(text, &j); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, line, err)
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("%w: line %d: duplicate job id %d", ErrFormat, line, j.ID)
		}
		seen[j.ID] = true
		if j.Submit < lastSubmit {
			return nil, fmt.Errorf("%w: line %d: submit times must be non-decreasing", ErrFormat, line)
		}
		lastSubmit = j.Submit
		out = append(out, j)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Write renders a trace as JSONL.
func Write(w io.Writer, jobs []Job) error {
	enc := json.NewEncoder(w)
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}

// Synthesize converts the workload generator's output (paper §6.3
// substitute trace) into trace records with all jobs submitted at t=0, as
// in a queue snapshot.
func Synthesize(n int, maxNodes, coresPerNode, seed int64) []Job {
	src := workload.GenerateTrace(n, maxNodes, seed)
	out := make([]Job, len(src))
	for i, tj := range src {
		out[i] = Job{
			ID:           tj.ID,
			Nodes:        tj.Nodes,
			CoresPerNode: coresPerNode,
			Duration:     tj.Duration,
		}
	}
	return out
}
