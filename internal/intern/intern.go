// Package intern provides a concurrency-safe string interning table
// mapping resource type names to dense int32 IDs.
//
// Fluxion's match hot path compares and aggregates resource types
// millions of times per scheduling cycle; interning turns those string
// map lookups into array indexing. The resource graph owns one Table,
// assigns every vertex its TypeID at AddVertex time, and compiled
// jobspecs (jobspec.Compile) intern their request types against the
// same table so the matcher can compare dense IDs directly.
package intern

import "sync"

// Table maps strings to dense IDs, assigned in first-seen order
// starting at 0. It is safe for concurrent use: readers (Lookup, Name,
// Len) take a reader lock while ID serializes insertions.
type Table struct {
	mu    sync.RWMutex
	ids   map[string]int32
	names []string
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{ids: make(map[string]int32)}
}

// ID returns the dense ID for name, interning it on first use.
func (t *Table) ID(name string) int32 {
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok = t.ids[name]; ok {
		return id
	}
	id = int32(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// Lookup returns the ID for name without interning; ok is false when
// the name has never been interned.
func (t *Table) Lookup(name string) (id int32, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok = t.ids[name]
	return id, ok
}

// Name returns the string for id, or "" when id was never assigned.
func (t *Table) Name(id int32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.names) {
		return ""
	}
	return t.names[id]
}

// Len returns the number of interned strings. IDs are always in
// [0, Len), so Len bounds dense arrays indexed by ID.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}
