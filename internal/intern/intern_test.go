package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestTableBasics(t *testing.T) {
	tab := NewTable()
	if tab.Len() != 0 {
		t.Fatalf("new table has Len %d", tab.Len())
	}
	a := tab.ID("node")
	b := tab.ID("core")
	if a == b {
		t.Fatalf("distinct names share ID %d", a)
	}
	if got := tab.ID("node"); got != a {
		t.Fatalf("re-interning changed ID: %d vs %d", got, a)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if id, ok := tab.Lookup("core"); !ok || id != b {
		t.Fatalf("Lookup(core) = %d,%v want %d,true", id, ok, b)
	}
	if _, ok := tab.Lookup("gpu"); ok {
		t.Fatal("Lookup of unseen name succeeded")
	}
	if got := tab.Name(a); got != "node" {
		t.Fatalf("Name(%d) = %q", a, got)
	}
	if got := tab.Name(99); got != "" {
		t.Fatalf("Name(99) = %q, want empty", got)
	}
	if got := tab.Name(-1); got != "" {
		t.Fatalf("Name(-1) = %q, want empty", got)
	}
}

func TestTableDenseIDs(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 100; i++ {
		id := tab.ID(fmt.Sprintf("type%d", i))
		if id != int32(i) {
			t.Fatalf("ID %d assigned for insertion %d", id, i)
		}
	}
}

func TestTableConcurrent(t *testing.T) {
	tab := NewTable()
	const workers = 8
	var wg sync.WaitGroup
	ids := make([][]int32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]int32, 64)
			for i := range out {
				out[i] = tab.ID(fmt.Sprintf("t%d", i))
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got ID %d for t%d, worker 0 got %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
	if tab.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tab.Len())
	}
}
