// Package rv1 emits and parses concrete resource sets in Flux's R version
// 1 format — the JSON document a resource manager hands to the execution
// system to contain, bind, and execute a job (paper §3.2 step 7).
//
// The execution section follows flux-core's schema: R_lite entries keyed
// by node rank with idset-compressed children, a nodelist in hostlist
// notation, and start/expiration times. Pooled resources (memory, burst
// buffer, bandwidth) and resources outside any compute node (rabbits,
// whole racks) do not fit R_lite's idset model, so they are carried in a
// "fluxion" extension section as path[units] grants.
package rv1

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"fluxion/internal/hostlist"
	"fluxion/internal/idset"
	"fluxion/internal/traverser"
)

// ErrFormat is wrapped by all decode errors.
var ErrFormat = errors.New("rv1: bad format")

// R is the top-level R version 1 document.
type R struct {
	Version   int       `json:"version"`
	Execution Execution `json:"execution"`
	Fluxion   *Fluxion  `json:"fluxion,omitempty"`
}

// Execution mirrors flux-core's execution section.
type Execution struct {
	RLite      []RLite `json:"R_lite"`
	StartTime  int64   `json:"starttime"`
	Expiration int64   `json:"expiration"`
	NodeList   string  `json:"nodelist"`
}

// RLite grants idset-compressed children on a set of node ranks.
type RLite struct {
	Rank     string            `json:"rank"`
	Children map[string]string `json:"children"`
}

// Fluxion is the extension section for grants R_lite cannot express.
type Fluxion struct {
	// Pools grants pooled units within a node rank:
	// "0" -> {"memory": 8}.
	Pools map[string]map[string]int64 `json:"pools,omitempty"`
	// Extra grants resources outside compute nodes as
	// "path" -> units.
	Extra map[string]int64 `json:"extra,omitempty"`
	// Reserved marks a future reservation rather than a live
	// allocation.
	Reserved bool  `json:"reserved,omitempty"`
	JobID    int64 `json:"jobid"`
}

// Encode renders an allocation as R version 1.
func Encode(alloc *traverser.Allocation) ([]byte, error) {
	doc := Build(alloc)
	return json.MarshalIndent(doc, "", "  ")
}

// Build constructs the R document for an allocation.
func Build(alloc *traverser.Allocation) *R {
	doc := &R{
		Version: 1,
		Execution: Execution{
			StartTime:  alloc.At,
			Expiration: alloc.At + alloc.Duration,
		},
		Fluxion: &Fluxion{JobID: alloc.JobID, Reserved: alloc.Reserved},
	}

	type rankInfo struct {
		children map[string][]int64 // type -> singleton IDs
		pools    map[string]int64   // type -> units
	}
	ranks := make(map[int64]*rankInfo)
	var nodeNames []string
	seenNode := make(map[int64]bool)

	nodeOf := func(v *traverser.VertexAlloc) (int64, bool) {
		for a := v.V; a != nil; a = a.Parent() {
			if a.Type == "node" {
				if !seenNode[a.ID] {
					seenNode[a.ID] = true
					nodeNames = append(nodeNames, a.Name)
				}
				return a.ID, true
			}
		}
		return 0, false
	}

	for i := range alloc.Vertices {
		va := &alloc.Vertices[i]
		if va.Units == 0 {
			nodeOf(va) // shared structural nodes still join the nodelist
			continue
		}
		rank, ok := nodeOf(va)
		if !ok || va.V.Type == "node" {
			if va.V.Type == "node" {
				// The node grant itself is implied by its rank
				// entry; whole-node exclusivity shows as all
				// children granted.
				continue
			}
			if doc.Fluxion.Extra == nil {
				doc.Fluxion.Extra = make(map[string]int64)
			}
			doc.Fluxion.Extra[va.V.Path()] += va.Units
			continue
		}
		ri := ranks[rank]
		if ri == nil {
			ri = &rankInfo{children: make(map[string][]int64), pools: make(map[string]int64)}
			ranks[rank] = ri
		}
		if va.V.Size == 1 {
			ri.children[va.V.Type] = append(ri.children[va.V.Type], va.V.ID)
		} else {
			ri.pools[va.V.Type] += va.Units
		}
	}

	// Merge ranks with identical children signatures, flux style.
	type sigGroup struct {
		ranks    []int64
		children map[string]string
	}
	groups := make(map[string]*sigGroup)
	var sigOrder []string
	for rank, ri := range ranks {
		children := make(map[string]string, len(ri.children))
		for typ, ids := range ri.children {
			children[typ] = idsetOf(ids)
		}
		sig := signature(children)
		g := groups[sig]
		if g == nil {
			g = &sigGroup{children: children}
			groups[sig] = g
			sigOrder = append(sigOrder, sig)
		}
		g.ranks = append(g.ranks, rank)
		if len(ri.pools) > 0 {
			if doc.Fluxion.Pools == nil {
				doc.Fluxion.Pools = make(map[string]map[string]int64)
			}
			doc.Fluxion.Pools[fmt.Sprintf("%d", rank)] = ri.pools
		}
	}
	sort.Strings(sigOrder)
	for _, sig := range sigOrder {
		g := groups[sig]
		if len(g.children) == 0 {
			continue
		}
		doc.Execution.RLite = append(doc.Execution.RLite, RLite{
			Rank:     idsetOf(g.ranks),
			Children: g.children,
		})
	}
	sort.Strings(nodeNames)
	doc.Execution.NodeList = hostlist.Compress(nodeNames)
	return doc
}

// idsetOf renders integer IDs as flux idset notation ("0-3,7").
func idsetOf(ids []int64) string {
	s := idset.New(ids...)
	return s.String()
}

func signature(children map[string]string) string {
	keys := make([]string, 0, len(children))
	for k := range children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, children[k])
	}
	return b.String()
}

// Decode parses an R version 1 document.
func Decode(data []byte) (*R, error) {
	var doc R
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, doc.Version)
	}
	return &doc, nil
}

// NodeCount returns the number of nodes granted.
func (r *R) NodeCount() (int, error) {
	if r.Execution.NodeList == "" {
		return 0, nil
	}
	return hostlist.Count(r.Execution.NodeList)
}

// ExpandIDSet expands idset notation to the ID list.
func ExpandIDSet(s string) ([]int64, error) {
	set, err := idset.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if set.Empty() {
		return nil, nil
	}
	return set.Slice(), nil
}
