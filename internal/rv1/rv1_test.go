package rv1

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/traverser"
)

func TestEncodeWholeNodes(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(1, 4, 4, 16, 0), 0, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.LowID{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 exclusive nodes with all cores.
	js := jobspec.New(3600, jobspec.RX("node", 2, jobspec.R("core", 4)))
	alloc, err := tr.MatchAllocate(7, js, 100)
	if err != nil {
		t.Fatal(err)
	}
	doc := Build(alloc)
	if doc.Version != 1 || doc.Fluxion.JobID != 7 || doc.Fluxion.Reserved {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Execution.StartTime != 100 || doc.Execution.Expiration != 3700 {
		t.Fatalf("times = %+v", doc.Execution)
	}
	if doc.Execution.NodeList != "node[0,1]" {
		t.Fatalf("nodelist = %q", doc.Execution.NodeList)
	}
	if n, err := doc.NodeCount(); err != nil || n != 2 {
		t.Fatalf("NodeCount = %d, %v", n, err)
	}
	// Both nodes grant cores; core IDs are global (node0: 0-3,
	// node1: 4-7) so there are two R_lite groups.
	totalCores := 0
	for _, rl := range doc.Execution.RLite {
		ids, err := ExpandIDSet(rl.Children["core"])
		if err != nil {
			t.Fatal(err)
		}
		totalCores += len(ids)
	}
	if totalCores != 8 {
		t.Fatalf("granted cores = %d; R_lite = %+v", totalCores, doc.Execution.RLite)
	}
}

func TestEncodePoolsAndSharedNodes(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(1, 2, 4, 32, 0), 0, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.LowID{})
	if err != nil {
		t.Fatal(err)
	}
	js := jobspec.NodeLocal(1, 1, 2, 8, 0, 600)
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	doc := Build(alloc)
	// Shared node still appears in the nodelist.
	if doc.Execution.NodeList != "node0" {
		t.Fatalf("nodelist = %q", doc.Execution.NodeList)
	}
	// Memory is a pool grant, not an idset child.
	pools := doc.Fluxion.Pools["0"]
	if pools["memory"] != 8 {
		t.Fatalf("pools = %+v", doc.Fluxion.Pools)
	}
	for _, rl := range doc.Execution.RLite {
		if _, ok := rl.Children["memory"]; ok {
			t.Fatal("pooled memory leaked into R_lite children")
		}
	}
}

func TestEncodeExtraResources(t *testing.T) {
	// Storage-only allocation: rabbit SSD outside any node.
	recipe := &grug.Recipe{Root: grug.N("cluster", 1,
		grug.N("rabbit", 2, grug.NP("ssd", 1, 1024, "GB")))}
	g, err := grug.BuildGraph(recipe, 0, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	js := jobspec.New(0, jobspec.R("rabbit", 1, jobspec.R("ssd", 100)))
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	doc := Build(alloc)
	if doc.Fluxion.Extra["/cluster0/rabbit0/ssd0"] != 100 {
		t.Fatalf("extra = %+v", doc.Fluxion.Extra)
	}
	if doc.Execution.NodeList != "" || len(doc.Execution.RLite) != 0 {
		t.Fatalf("unexpected node grants: %+v", doc.Execution)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(2, 4, 8, 0, 0), 0, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	js := jobspec.New(60, jobspec.RX("node", 3, jobspec.R("core", 8)))
	alloc, err := tr.MatchAllocate(42, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(alloc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	want := Build(alloc)
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, want)
	}
	if !strings.Contains(string(data), "R_lite") {
		t.Fatalf("JSON missing R_lite:\n%s", data)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("junk")); !errors.Is(err, ErrFormat) {
		t.Errorf("junk: %v", err)
	}
	if _, err := Decode([]byte(`{"version": 9}`)); !errors.Is(err, ErrFormat) {
		t.Errorf("bad version: %v", err)
	}
}

func TestIDSet(t *testing.T) {
	cases := []struct {
		ids  []int64
		want string
	}{
		{nil, ""},
		{[]int64{3}, "3"},
		{[]int64{0, 1, 2, 3}, "0-3"},
		{[]int64{5, 0, 1, 3}, "0,1,3,5"},
	}
	for _, c := range cases {
		if got := idsetOf(c.ids); got != c.want {
			t.Errorf("idsetOf(%v) = %q, want %q", c.ids, got, c.want)
		}
	}
	ids, err := ExpandIDSet("0-2,7")
	if err != nil || !reflect.DeepEqual(ids, []int64{0, 1, 2, 7}) {
		t.Fatalf("ExpandIDSet = %v, %v", ids, err)
	}
	for _, bad := range []string{"x", "3-1", "1-"} {
		if _, err := ExpandIDSet(bad); !errors.Is(err, ErrFormat) {
			t.Errorf("ExpandIDSet(%q): %v", bad, err)
		}
	}
}

func TestRankMerging(t *testing.T) {
	// Two identical whole nodes on one rack produce distinct child
	// idsets (global core IDs), but identical-shape grants on the same
	// IDs merge. Build a custom graph where two nodes share core IDs.
	g, err := grug.BuildGraph(grug.Small(1, 2, 2, 0, 0), 0, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	js := jobspec.New(60, jobspec.RX("node", 2, jobspec.R("core", 2)))
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	doc := Build(alloc)
	ranks := map[string]bool{}
	for _, rl := range doc.Execution.RLite {
		ranks[rl.Rank] = true
	}
	if len(doc.Execution.RLite) != 2 || !ranks["0"] || !ranks["1"] {
		t.Fatalf("R_lite = %+v", doc.Execution.RLite)
	}
}
