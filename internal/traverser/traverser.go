// Package traverser implements Fluxion's depth-first-and-up (DFU) graph
// traversal (paper §3.2): it matches an abstract resource request graph
// (jobspec) against the resource graph store, scoring candidates through a
// match policy, pruning descent with aggregate filters (§3.4), and — once
// the best-matching subgraph is selected — propagating the allocation to
// ancestor pruning filters via the Scheduler-Driven Filter Update (SDFU).
//
// The three match operations mirror flux-sched:
//
//   - MatchAllocate: allocate at a given time, or fail;
//   - MatchAllocateOrReserve: allocate now or reserve the earliest future
//     time the request fits (the building block of backfilling);
//   - MatchSatisfy: check whether the request could ever be satisfied on
//     an empty system (capacity-only).
package traverser

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/planner"
	"fluxion/internal/resgraph"
)

// Errors returned by traverser operations.
var (
	// ErrNoMatch reports that the request cannot be satisfied at the
	// requested time (MatchAllocate) or at any future candidate time
	// (MatchAllocateOrReserve).
	ErrNoMatch = errors.New("traverser: no matching resources")
	// ErrUnsatisfiable reports that the request exceeds the system's
	// total capacity and can never be satisfied.
	ErrUnsatisfiable = errors.New("traverser: request unsatisfiable")
	// ErrExists reports a duplicate job ID.
	ErrExists = errors.New("traverser: job already exists")
	// ErrUnknownJob reports an unknown job ID.
	ErrUnknownJob = errors.New("traverser: unknown job")
	// ErrNoFilter reports a reservation attempt on a graph whose root
	// carries no pruning filter to enumerate candidate times.
	ErrNoFilter = errors.New("traverser: reservation requires a root pruning filter")
	// ErrConflict reports that a speculative allocation lost the race: by
	// commit time another job had taken some of its selected capacity.
	// The speculation is consumed; the caller should re-match.
	ErrConflict = errors.New("traverser: speculative allocation conflicts with committed state")
)

// Option configures a Traverser.
type Option func(*Traverser)

// WithSubsystem selects the subsystem to walk (default containment).
func WithSubsystem(name string) Option {
	return func(t *Traverser) { t.subsystem = name }
}

// WithMaxReserveDepth bounds how many candidate times
// MatchAllocateOrReserve probes before giving up (default 4096).
func WithMaxReserveDepth(n int) Option {
	return func(t *Traverser) { t.maxReserveDepth = n }
}

// WithMVCC toggles epoch-snapshot speculation (default on). When on,
// MatchSpeculate pins the graph's current MVCC epoch and matches against
// it with zero synchronization — no graph reader lock, no per-vertex
// claim atomics — and Commit re-validates with a cheap epoch-stability
// check. When off, speculation falls back to the legacy path: reader
// lock for the walk plus per-vertex speculative claim counters. The
// toggle exists for decision-parity testing of the two paths.
func WithMVCC(on bool) Option {
	return func(t *Traverser) { t.mvcc = on }
}

// EnableSteering turns on per-job first-fit steering: every match attempt
// (speculative or sequential) rotates candidate lists by a jobID-derived
// offset, so concurrent MVCC speculators probe disjoint pools instead of
// all claiming the head of the same list and conflicting at commit.
// Placement stays deterministic — a pure function of (jobID, graph state),
// identical on every match path — but differs from the natural first-fit
// order, so direct API users keep it off by default; the scheduler enables
// it when it owns all matching on the traverser. Call before any
// concurrent use; the flag is read without synchronization. No effect on
// ranking policies (they re-sort candidates) or the non-MVCC path (it
// steers with shared claim counters).
func (t *Traverser) EnableSteering() { t.steer = true }

// Traverser matches jobspecs against a finalized resource graph.
//
// A Traverser is safe for concurrent use. Committing operations
// (MatchAllocate, Commit, Cancel, ...) serialize under a writer lock, while
// MatchSpeculate and the read-only queries run concurrently under a reader
// lock; speculative matches coordinate through per-vertex claim counters
// and are validated against committed planner state at Commit time.
// Lock ordering is t.mu, then the graph's lock, then per-vertex planner
// locks.
type Traverser struct {
	g               *resgraph.Graph
	policy          match.Policy
	subsystem       string
	maxReserveDepth int
	root            *resgraph.Vertex // cached: Graph.Root self-locks
	containment     bool             // subsystem is containment: subtree intervals are valid
	staticOrder     bool             // policy keeps traversal order: first-fit cursors apply
	mvcc            bool             // speculate against pinned MVCC epochs (see WithMVCC)
	steer           bool             // rotate first-fit order per job (see EnableSteering)

	mu     sync.RWMutex
	allocs map[int64]*Allocation

	// scratch is the match working memory for paths serialized under
	// t.mu; scratchPool serves the lock-free paths (MatchSatisfy,
	// MatchSpeculate), which may run concurrently.
	scratch     *matchScratch
	scratchPool sync.Pool
}

// New creates a traverser over g using the given match policy.
func New(g *resgraph.Graph, policy match.Policy, opts ...Option) (*Traverser, error) {
	if g == nil || !g.Finalized() {
		return nil, fmt.Errorf("traverser: graph must be finalized")
	}
	if policy == nil {
		policy = match.First{}
	}
	t := &Traverser{
		g:               g,
		policy:          policy,
		subsystem:       resgraph.Containment,
		maxReserveDepth: 4096,
		mvcc:            true,
		allocs:          make(map[int64]*Allocation),
	}
	for _, o := range opts {
		o(t)
	}
	t.root = t.g.Root(t.subsystem)
	if t.root == nil {
		return nil, fmt.Errorf("traverser: subsystem %q has no root", t.subsystem)
	}
	t.containment = t.subsystem == resgraph.Containment
	t.staticOrder = match.IsTraversalOrder(t.policy)
	t.scratch = &matchScratch{}
	t.scratchPool.New = func() any { return &matchScratch{} }
	return t, nil
}

// Compile precompiles js against this traverser's graph for repeated
// matching through the *Compiled entry points: the request tree is
// flattened with resource types interned into the graph's type table and
// per-node pruning aggregates precomputed once, instead of on every
// attempt. The result is immutable and safe to share across goroutines;
// it is only valid for traversers over the same graph.
func (t *Traverser) Compile(js *jobspec.Jobspec) (*jobspec.Compiled, error) {
	return jobspec.Compile(js, t.g.Types())
}

// checkCompiled guards the *Compiled entry points against specs compiled
// for another graph, whose interned type IDs would be meaningless here.
func (t *Traverser) checkCompiled(cjs *jobspec.Compiled) error {
	if cjs == nil {
		return fmt.Errorf("traverser: nil compiled jobspec")
	}
	if cjs.Table() != t.g.Types() {
		return fmt.Errorf("traverser: jobspec compiled against a different graph")
	}
	return nil
}

// Graph returns the underlying store.
func (t *Traverser) Graph() *resgraph.Graph { return t.g }

// Policy returns the match policy in use.
func (t *Traverser) Policy() match.Policy { return t.policy }

// VertexAlloc records one selected vertex and the units planned on it.
type VertexAlloc struct {
	V     *resgraph.Vertex
	Units int64
	span  int64 // planner span ID; 0 when Units == 0
}

type filterSpan struct {
	owner *resgraph.Vertex
	id    int64 // Multi span ID
}

// Allocation is the selected resource set emitted for a matched job
// (paper §3.2 step 7).
type Allocation struct {
	JobID    int64
	At       int64
	Duration int64
	// Reserved is true when the allocation is a future reservation
	// rather than an immediate allocation.
	Reserved bool
	// Vertices lists the selected vertices; entries with Units 0 are
	// shared structural vertices granting traversal only.
	Vertices []VertexAlloc

	filterSpans []filterSpan

	// pin is the MVCC epoch this allocation speculated against (nil for
	// committed allocations and legacy claim-counter speculations).
	// Commit compares it against the current epoch: a still-stable pin
	// proves nothing changed since the match, skipping per-vertex
	// re-validation.
	pin *resgraph.Epoch
}

// Describe renders the selected resource set, one "path[units]" per
// consuming vertex, sorted by path.
func (a *Allocation) Describe() string {
	parts := make([]string, 0, len(a.Vertices))
	for _, va := range a.Vertices {
		if va.Units > 0 {
			parts = append(parts, fmt.Sprintf("%s[%d]", va.V.Path(), va.Units))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Units returns the total units of the given resource type granted to the
// job (e.g. Units("core") for core-seconds accounting).
func (a *Allocation) Units(typ string) int64 {
	var n int64
	for _, va := range a.Vertices {
		if va.V.Type == typ {
			n += va.Units
		}
	}
	return n
}

// Nodes returns the distinct node-type vertices granted to the job,
// including shared structural nodes.
func (a *Allocation) Nodes() []*resgraph.Vertex {
	var out []*resgraph.Vertex
	seen := make(map[int64]bool)
	for _, va := range a.Vertices {
		if va.V.Type == "node" && !seen[va.V.UniqID] {
			seen[va.V.UniqID] = true
			out = append(out, va.V)
		}
	}
	return out
}

// effectiveDuration clamps a jobspec duration (0 = unlimited) to the
// planner horizon starting at `at`.
func (t *Traverser) effectiveDuration(js *jobspec.Jobspec, at int64) int64 {
	max := t.g.Base() + t.g.Horizon() - at
	if js.Duration <= 0 || js.Duration > max {
		return max
	}
	return js.Duration
}

// MatchAllocate matches js at time `at` and commits the allocation under
// jobID. It fails with ErrNoMatch when the system cannot host the request
// at that time.
func (t *Traverser) MatchAllocate(jobID int64, js *jobspec.Jobspec, at int64) (*Allocation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.allocs[jobID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrExists, jobID)
	}
	cjs, err := t.Compile(js)
	if err != nil {
		return nil, err
	}
	return t.allocate(jobID, cjs, at)
}

// MatchAllocateCompiled is MatchAllocate for a precompiled jobspec,
// skipping the per-call validation and compilation pass.
func (t *Traverser) MatchAllocateCompiled(jobID int64, cjs *jobspec.Compiled, at int64) (*Allocation, error) {
	if err := t.checkCompiled(cjs); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.allocs[jobID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrExists, jobID)
	}
	return t.allocate(jobID, cjs, at)
}

// allocate matches and registers; callers hold t.mu and have dup-checked.
func (t *Traverser) allocate(jobID int64, cjs *jobspec.Compiled, at int64) (*Allocation, error) {
	alloc, err := t.tryMatch(jobID, cjs, at, modeCommit, nil, nil)
	if err != nil {
		return nil, err
	}
	t.allocs[jobID] = alloc
	t.g.PublishEpoch()
	return alloc, nil
}

// MatchAllocateOrReserve matches js at time `now`, or reserves the
// earliest future time the request fits (paper §3.4: the root filter's
// PlannerMulti enumerates candidate times, Figure 2).
func (t *Traverser) MatchAllocateOrReserve(jobID int64, js *jobspec.Jobspec, now int64) (*Allocation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.allocs[jobID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrExists, jobID)
	}
	cjs, err := t.Compile(js)
	if err != nil {
		return nil, err
	}
	return t.allocateOrReserve(jobID, cjs, now)
}

// MatchAllocateOrReserveCompiled is MatchAllocateOrReserve for a
// precompiled jobspec.
func (t *Traverser) MatchAllocateOrReserveCompiled(jobID int64, cjs *jobspec.Compiled, now int64) (*Allocation, error) {
	if err := t.checkCompiled(cjs); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.allocs[jobID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrExists, jobID)
	}
	return t.allocateOrReserve(jobID, cjs, now)
}

// allocateOrReserve implements the allocate-else-reserve probe loop;
// callers hold t.mu and have dup-checked.
func (t *Traverser) allocateOrReserve(jobID int64, cjs *jobspec.Compiled, now int64) (*Allocation, error) {
	if alloc, err := t.tryMatch(jobID, cjs, now, modeCommit, nil, nil); err == nil {
		t.allocs[jobID] = alloc
		t.g.PublishEpoch()
		return alloc, nil
	}
	return t.reserveProbe(jobID, cjs, now)
}

// MatchSatisfy reports whether js could ever be satisfied by the system,
// ignoring current allocations (capacity-only check).
func (t *Traverser) MatchSatisfy(js *jobspec.Jobspec) (bool, error) {
	cjs, err := t.Compile(js)
	if err != nil {
		return false, err
	}
	return t.satisfy(cjs)
}

// MatchSatisfyCompiled is MatchSatisfy for a precompiled jobspec.
func (t *Traverser) MatchSatisfyCompiled(cjs *jobspec.Compiled) (bool, error) {
	if err := t.checkCompiled(cjs); err != nil {
		return false, err
	}
	return t.satisfy(cjs)
}

func (t *Traverser) satisfy(cjs *jobspec.Compiled) (bool, error) {
	_, err := t.tryMatch(0, cjs, t.g.Base(), modeDry, nil, nil)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrNoMatch):
		return false, nil
	default:
		return false, err
	}
}

// trackedCounts restricts a compiled jobspec's total counts to the types
// the root filter tracks, in the map form the reservation probe's
// candidate-time queries take. Reservation probing is the cold path, so
// member planners are resolved by name: it stays correct even for a
// filter that never had its type IDs indexed.
func trackedCounts(cjs *jobspec.Compiled, rf *planner.Multi) map[string]int64 {
	out := make(map[string]int64)
	for _, tc := range cjs.Totals() {
		if tc.Units > 0 && rf.Planner(tc.Type) != nil {
			out[tc.Type] = tc.Units
		}
	}
	return out
}

// Cancel releases all resources held (or reserved) by jobID.
func (t *Traverser) Cancel(jobID int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err := t.remove(jobID)
	t.g.PublishEpoch()
	return err
}

// Evict forcibly releases a job's grants after a resource failure, without
// treating it as a normal cancel: the allocation is returned (detached from
// the traverser) so the queuing layer can account for the work lost and
// requeue the job. Resource-wise it is equivalent to Cancel.
func (t *Traverser) Evict(jobID int64) (*Allocation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	alloc, err := t.remove(jobID)
	t.g.PublishEpoch()
	return alloc, err
}

// remove uninstalls an allocation's planner spans and filter spans.
// Callers hold t.mu.
func (t *Traverser) remove(jobID int64) (*Allocation, error) {
	alloc, ok := t.allocs[jobID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownJob, jobID)
	}
	delete(t.allocs, jobID)
	var firstErr error
	for _, va := range alloc.Vertices {
		if va.Units == 0 {
			continue
		}
		if err := va.V.Planner().RemoveSpan(va.span); err != nil && firstErr == nil {
			firstErr = err
		}
		t.g.MarkEpochDirty(va.V)
	}
	for _, fs := range alloc.filterSpans {
		if err := fs.owner.Filter().RemoveSpan(fs.id); err != nil && firstErr == nil {
			firstErr = err
		}
		t.g.MarkEpochDirty(fs.owner)
	}
	t.publishFrees(alloc)
	return alloc, firstErr
}

// AffectedJobs returns, in ascending order, the IDs of jobs holding any
// grant (consuming or shared-structural) on a vertex in the containment
// subtree rooted at root. These are the jobs a failure of that subtree
// strands.
func (t *Traverser) AffectedJobs(root *resgraph.Vertex) []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.affectedJobs(root)
}

// affectedJobs is AffectedJobs without locking; callers hold t.mu.
func (t *Traverser) affectedJobs(root *resgraph.Vertex) []int64 {
	if root == nil {
		return nil
	}
	prefix := root.Path()
	var out []int64
	for id, alloc := range t.allocs {
		for _, va := range alloc.Vertices {
			if pathWithin(va.V.Path(), prefix) {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pathWithin reports whether path lies at or beneath root in the
// containment hierarchy ("/a/b" is within "/a" but "/ab" is not).
func pathWithin(path, root string) bool {
	if root == "" || path == "" {
		return false
	}
	if path == root {
		return true
	}
	return strings.HasPrefix(path, root) && len(path) > len(root) && path[len(root)] == '/'
}

// MarkDown takes the containment subtree at path out of service: every job
// with a grant in the subtree is evicted, the subtree's status bits are
// flipped down, and the transitioned capacity is subtracted from every
// ancestor pruning filter (paper §5.5 status dynamism). It returns the
// evicted allocations in ascending job-ID order so the queuing layer can
// requeue them. Marking an already-down subtree is a no-op.
func (t *Traverser) MarkDown(path string) ([]*Allocation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.g.ByPath(path)
	if v == nil {
		return nil, fmt.Errorf("traverser: no vertex at %q", path)
	}
	var evicted []*Allocation
	for _, id := range t.affectedJobs(v) {
		alloc, err := t.remove(id)
		if err != nil {
			return evicted, err
		}
		evicted = append(evicted, alloc)
	}
	if _, err := t.g.MarkDown(v); err != nil {
		return evicted, err
	}
	// g.MarkDown publishes when status flipped; this covers the
	// already-down case where only evictions above dirtied state.
	t.g.PublishEpoch()
	return evicted, nil
}

// MarkUp returns the containment subtree at path to service, restoring the
// transitioned capacity to every ancestor pruning filter.
func (t *Traverser) MarkUp(path string) error {
	v := t.g.ByPath(path)
	if v == nil {
		return fmt.Errorf("traverser: no vertex at %q", path)
	}
	_, err := t.g.MarkUp(v)
	return err
}

// Grant names one vertex grant for Reinstall: the vertex's containment
// path and the units planned on it (0 for shared structural vertices).
type Grant struct {
	Path  string `json:"path"`
	Units int64  `json:"units"`
}

// Grants renders an allocation's selections as path/unit pairs, the
// serializable form consumed by Reinstall.
func (a *Allocation) Grants() []Grant {
	out := make([]Grant, 0, len(a.Vertices))
	for _, va := range a.Vertices {
		out = append(out, Grant{Path: va.V.Path(), Units: va.Units})
	}
	return out
}

// Reinstall re-creates an allocation from its serialized grants without
// matching — the restore path for checkpointed scheduler state. The grant
// windows must still fit (a conflicting live allocation fails the call
// atomically), and ancestor filters are updated exactly as a fresh match
// would have (SDFU).
func (t *Traverser) Reinstall(jobID int64, at, duration int64, reserved bool, grants []Grant) (*Allocation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.allocs[jobID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrExists, jobID)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("%w: duration %d", ErrNoMatch, duration)
	}
	alloc := &Allocation{JobID: jobID, At: at, Duration: duration, Reserved: reserved}
	rollback := func() {
		for _, va := range alloc.Vertices {
			if va.Units > 0 {
				_ = va.V.Planner().RemoveSpan(va.span)
			}
		}
	}
	for _, gr := range grants {
		v := t.g.ByPath(gr.Path)
		if v == nil {
			rollback()
			return nil, fmt.Errorf("%w: no vertex at %q", ErrNoMatch, gr.Path)
		}
		if gr.Units < 0 {
			rollback()
			return nil, fmt.Errorf("%w: negative units %d at %q", ErrNoMatch, gr.Units, gr.Path)
		}
		va := VertexAlloc{V: v, Units: gr.Units}
		if gr.Units > 0 {
			id, err := v.Planner().AddSpan(at, duration, gr.Units)
			if err != nil {
				rollback()
				return nil, fmt.Errorf("%w: %q: %v", ErrNoMatch, gr.Path, err)
			}
			va.span = id
			t.g.MarkEpochDirty(v)
		}
		alloc.Vertices = append(alloc.Vertices, va)
	}
	if err := t.updateFilters(alloc); err != nil {
		rollback()
		return nil, err
	}
	t.allocs[jobID] = alloc
	t.g.PublishEpoch()
	return alloc, nil
}

// Release shrinks a malleable job (paper §5.5): the grants whose vertex
// paths appear in paths are removed from the job's allocation and their
// capacity freed, while the rest of the allocation stays intact. Ancestor
// pruning filters are rebuilt from the remaining grants. Releasing every
// consuming vertex is equivalent to Cancel.
func (t *Traverser) Release(jobID int64, paths []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	alloc, ok := t.allocs[jobID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, jobID)
	}
	drop := make(map[string]bool, len(paths))
	for _, p := range paths {
		drop[p] = true
	}
	// Validate first so a bad path changes nothing.
	matched := make(map[string]bool, len(paths))
	for _, va := range alloc.Vertices {
		if drop[va.V.Path()] {
			matched[va.V.Path()] = true
		}
	}
	for _, p := range paths {
		if !matched[p] {
			return fmt.Errorf("%w: job %d holds nothing at %q", ErrUnknownJob, jobID, p)
		}
	}
	kept := alloc.Vertices[:0]
	remaining := int64(0)
	for _, va := range alloc.Vertices {
		if drop[va.V.Path()] {
			if va.Units > 0 {
				if err := va.V.Planner().RemoveSpan(va.span); err != nil {
					return err
				}
				t.g.MarkEpochDirty(va.V)
				t.g.PublishSpanDelta(resgraph.DeltaFree, va.V, va.Units, alloc.At, alloc.At+alloc.Duration)
			}
			continue
		}
		kept = append(kept, va)
		remaining += va.Units
	}
	alloc.Vertices = kept
	// Rebuild the filter spans from the surviving grants (SDFU over the
	// reduced selection).
	for _, fs := range alloc.filterSpans {
		if err := fs.owner.Filter().RemoveSpan(fs.id); err != nil {
			return err
		}
		t.g.MarkEpochDirty(fs.owner)
	}
	alloc.filterSpans = nil
	if remaining == 0 && len(alloc.Vertices) == 0 {
		delete(t.allocs, jobID)
		t.g.PublishEpoch()
		return nil
	}
	err := t.updateFilters(alloc)
	t.g.PublishEpoch()
	return err
}

// Info returns the allocation for jobID.
func (t *Traverser) Info(jobID int64) (*Allocation, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.allocs[jobID]
	return a, ok
}

// JobCount returns the number of live jobs without materializing the ID
// slice Jobs builds.
func (t *Traverser) JobCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.allocs)
}

// Jobs returns all live job IDs in ascending order.
func (t *Traverser) Jobs() []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int64, 0, len(t.allocs))
	for id := range t.allocs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matchMode selects what a match attempt does with its selections.
type matchMode int

const (
	// modeCommit plans spans eagerly and installs filter spans (SDFU).
	modeCommit matchMode = iota
	// modeDry checks capacity only: no spans, no claims.
	modeDry
	// modeSnap speculates: selections are published as per-vertex claim
	// counters against a read snapshot, to be validated and committed
	// later by Commit (or released by Abandon).
	modeSnap
)

// tryMatch runs one full match attempt at time `at`. In commit mode the
// vertex spans are committed and ancestor filters updated (SDFU) on
// success; on failure everything is rolled back and ErrNoMatch returned.
//
// With ep == nil, the graph's reader lock is held for the whole traversal
// so topology mutations (attach/detach, status flips) never interleave
// with a match — which is also what freezes the topology and status bits
// the match kernel's candidate cache relies on. With a non-nil ep (epoch
// speculation, modeSnap only), no graph lock is taken at all: every
// status bit, subtree label, planner window, and pruning filter is read
// from the immutable pinned epoch, and tentative claims live in the
// attempt's private scratch.
func (t *Traverser) tryMatch(jobID int64, cjs *jobspec.Compiled, at int64, mode matchMode, sig *BlockSig, ep *resgraph.Epoch) (*Allocation, error) {
	dur := t.effectiveDuration(cjs.Spec(), at)
	if dur <= 0 {
		if sig != nil {
			sig.reset(at, 0)
			sig.WakeAnyFree = true
		}
		return nil, fmt.Errorf("%w: time %d outside horizon", ErrNoMatch, at)
	}
	if sig != nil {
		sig.reset(at, dur)
	}

	// Commit mode runs under t.mu, so the traverser's own scratch is
	// free; the lock-free modes (dry, snap) draw from the pool.
	var s *matchScratch
	if mode == modeCommit {
		s = t.scratch
	} else {
		s = t.scratchPool.Get().(*matchScratch)
		defer t.scratchPool.Put(s)
	}

	root := t.root
	if ep == nil {
		t.g.RLock()
		defer t.g.RUnlock()
		s.begin(t.g.UniqBound(), t.g.Epoch().StructVersion())
	} else {
		s.begin(ep.UniqBound(), ep.StructVersion())
	}

	// Fast fail: the root filter's aggregates must fit first (paper
	// §3.2: the traversal begins at the graph store root, where the
	// aggregate counts of all requested resources are checked).
	if mode != modeDry {
		if ep != nil {
			if rf := ep.Filter(root.UniqID); rf != nil {
				tracked, fit := false, true
				for _, tc := range cjs.Totals() {
					if tc.Units <= 0 {
						continue
					}
					sn := rf.ByID(tc.ID)
					if sn == nil {
						continue
					}
					tracked = true
					if !sn.CanFit(at, dur, tc.Units) {
						fit = false
						break
					}
				}
				if tracked && !fit {
					return nil, fmt.Errorf("%w: root filter rejects at t=%d", ErrNoMatch, at)
				}
			}
		} else if rf := root.Filter(); rf != nil {
			tracked, fit := false, true
			for _, tc := range cjs.Totals() {
				if tc.Units <= 0 {
					continue
				}
				p := rf.PlannerByID(tc.ID)
				if p == nil {
					continue
				}
				tracked = true
				if !p.CanFit(at, dur, tc.Units) {
					fit = false
					if sig != nil {
						sig.noteVertex(root, tc.ID, p.ShortfallDuring(at, dur, tc.Units))
					}
					break
				}
			}
			if tracked && !fit {
				return nil, fmt.Errorf("%w: root filter rejects at t=%d", ErrNoMatch, at)
			}
		}
	}

	m := matcher{
		t:     t,
		s:     s,
		nodes: cjs.Nodes(),
		at:    at,
		dur:   dur,
		dry:   mode == modeDry,
		snap:  mode == modeSnap,
		ep:    ep,
		sig:   sig,
	}
	if t.steer && t.staticOrder {
		// Divergence steering without shared state: each match attempt
		// rotates first-fit candidate lists by a jobID-derived offset, so
		// concurrent speculators probe disjoint pools instead of all
		// racing for the head of the same list. The rotation applies on
		// every path (speculative and sequential alike) and in both the
		// MVCC and legacy configurations, making a job's placement a pure
		// function of (jobID, graph state) — speculation and its
		// sequential fallback agree, which keeps full, incremental, and
		// cross-configuration runs decision-identical.
		m.rot = splitmix64(uint64(jobID))
	}
	if !m.matchForest(root, cjs.Roots(), false) {
		m.rollbackTo(0)
		if sig != nil && len(sig.Reasons) == 0 && !sig.Overflow {
			// Backstop: a failure the walk did not localize (e.g. every
			// candidate was status-down). Wake on any free in the system.
			sig.noteVertex(root, AnyType, 1)
		}
		return nil, fmt.Errorf("%w: at t=%d", ErrNoMatch, at)
	}
	alloc := &Allocation{JobID: jobID, At: at, Duration: dur}
	switch mode {
	case modeCommit:
		alloc.Vertices = append(make([]VertexAlloc, 0, len(s.verts)), s.verts...)
		if err := t.updateFilters(alloc); err != nil {
			m.rollbackTo(0)
			return nil, err
		}
	case modeDry:
		m.rollbackTo(0)
	case modeSnap:
		// The selection must outlive this attempt's scratch.
		alloc.Vertices = append(make([]VertexAlloc, 0, len(s.verts)), s.verts...)
		if ep != nil {
			// Epoch speculation: tentative claims are scratch-local;
			// zero them so the pooled scratch comes back clean. (Legacy
			// claims stay published until Commit or Abandon.)
			alloc.pin = ep
			for _, va := range s.verts {
				if va.Units > 0 {
					s.tentative[va.V.UniqID] -= va.Units
				}
			}
		}
	}
	return alloc, nil
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed hash
// of a job ID into a rotation offset.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PinEpoch returns the graph's current MVCC epoch for a batch of epoch
// speculations (one atomic load), or nil when epoch speculation is
// disabled (WithMVCC(false)) — a nil pin routes MatchSpeculateEpoch to
// the legacy claim-counter path.
func (t *Traverser) PinEpoch() *resgraph.Epoch {
	if !t.mvcc {
		return nil
	}
	return t.g.Epoch()
}

// MatchSpeculate matches js at time `at` against a read snapshot without
// committing anything: the returned Allocation is tentative and MUST be
// handed to exactly one of Commit or Abandon. Multiple goroutines may
// speculate concurrently, and concurrently with read queries.
//
// In MVCC mode (the default) the attempt pins the current epoch and runs
// with zero synchronization against its immutable snapshots. In legacy
// mode, selected units are published to per-vertex claim counters so
// concurrent speculations steer around each other.
func (t *Traverser) MatchSpeculate(jobID int64, js *jobspec.Jobspec, at int64) (*Allocation, error) {
	cjs, err := t.Compile(js)
	if err != nil {
		return nil, err
	}
	return t.MatchSpeculateCompiledEpoch(jobID, cjs, at, t.PinEpoch())
}

// MatchSpeculateCompiled is MatchSpeculate for a precompiled jobspec.
func (t *Traverser) MatchSpeculateCompiled(jobID int64, cjs *jobspec.Compiled, at int64) (*Allocation, error) {
	return t.MatchSpeculateCompiledEpoch(jobID, cjs, at, t.PinEpoch())
}

// MatchSpeculateCompiledEpoch is MatchSpeculateCompiled against an
// explicitly pinned epoch, letting a scheduling cycle pin once and fan a
// whole batch of speculations out against the same consistent snapshot.
// A nil ep selects the legacy claim-counter path.
func (t *Traverser) MatchSpeculateCompiledEpoch(jobID int64, cjs *jobspec.Compiled, at int64, ep *resgraph.Epoch) (*Allocation, error) {
	if err := t.checkCompiled(cjs); err != nil {
		return nil, err
	}
	t.mu.RLock()
	_, dup := t.allocs[jobID]
	t.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %d", ErrExists, jobID)
	}
	return t.tryMatch(jobID, cjs, at, modeSnap, nil, ep)
}

// Commit validates a speculative allocation against committed planner
// state and installs it. For an epoch speculation whose pinned epoch is
// still stable — nothing committed, released, or flipped since the pin —
// re-validation is one version comparison and the per-vertex conflict
// re-walk (status, exclusive-takeover probes) is skipped entirely; spans
// are still installed, which is the commit itself. Otherwise conflict
// detection is inherent: each selection is re-planned with AddSpan, which
// fails if a concurrent commit took the capacity first; shared structural
// vertices are re-checked for exclusive takeover and detached or downed
// vertices rejected. On any conflict every span added so far is rolled
// back and ErrConflict returned — the job must be re-matched. The
// speculation is consumed either way; do not call Abandon afterwards.
func (t *Traverser) Commit(alloc *Allocation) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.commitSpans(alloc)
	if err == nil {
		t.g.PublishEpoch()
	}
	return err
}

// commitSpans is Commit's validation and span installation; callers hold
// t.mu. Split out so the epoch publication above runs after the graph
// reader lock is released.
func (t *Traverser) commitSpans(alloc *Allocation) error {
	if alloc.pin == nil {
		// Legacy speculation: release claims before unlocking but after
		// spans are in place, so concurrent speculators never observe
		// the capacity as free. (Epoch speculations publish no claims.)
		defer t.releaseClaims(alloc)
	}
	if _, dup := t.allocs[alloc.JobID]; dup {
		return fmt.Errorf("%w: %d", ErrExists, alloc.JobID)
	}
	t.g.RLock()
	defer t.g.RUnlock()
	// Stability is checked under the reader lock (writers excluded) and
	// t.mu (committers serialized): if the pinned epoch is still current
	// with nothing pending, the state the speculation matched against is
	// the state being committed into.
	fast := alloc.pin != nil && t.g.EpochStable(alloc.pin)
	rollback := func(n int) {
		for _, va := range alloc.Vertices[:n] {
			if va.Units > 0 {
				_ = va.V.Planner().RemoveSpan(va.span)
			}
		}
	}
	for i := range alloc.Vertices {
		va := &alloc.Vertices[i]
		if !fast {
			if !va.V.Attached() || va.V.Status != resgraph.StatusUp {
				rollback(i)
				return fmt.Errorf("%w: %s went down", ErrConflict, va.V.Path())
			}
		}
		if va.Units == 0 {
			if fast {
				continue
			}
			// Shared structural grant: the vertex must not have been
			// exclusively taken since speculation.
			if avail, err := va.V.Planner().AvailDuring(alloc.At, alloc.Duration); err != nil || avail <= 0 {
				rollback(i)
				return fmt.Errorf("%w: %s exclusively taken", ErrConflict, va.V.Path())
			}
			continue
		}
		id, err := va.V.Planner().AddSpan(alloc.At, alloc.Duration, va.Units)
		if err != nil {
			rollback(i)
			return fmt.Errorf("%w: %s: %v", ErrConflict, va.V.Path(), err)
		}
		va.span = id
		t.g.MarkEpochDirty(va.V)
	}
	if err := t.updateFilters(alloc); err != nil {
		rollback(len(alloc.Vertices))
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	t.allocs[alloc.JobID] = alloc
	return nil
}

// Abandon releases a speculative allocation without committing it. Safe
// to call from any goroutine; must not be called after Commit. For epoch
// speculations this is a no-op — they publish no shared state.
func (t *Traverser) Abandon(alloc *Allocation) {
	if alloc == nil || alloc.pin != nil {
		return
	}
	t.releaseClaims(alloc)
}

// releaseClaims retracts the per-vertex claim counters a speculation
// published.
func (t *Traverser) releaseClaims(alloc *Allocation) {
	for _, va := range alloc.Vertices {
		if va.Units > 0 {
			va.V.AddSpecClaim(-va.Units)
		}
	}
}

// updateFilters is the Scheduler-Driven Filter Update (paper §3.4): for
// every selected consuming vertex, walk its containment ancestors and add
// one aggregate span per filter-carrying ancestor, covering exactly the
// units selected beneath it. The per-owner requests accumulate in the
// traverser's SDFU scratch (all callers hold t.mu) instead of a freshly
// built map of maps.
func (t *Traverser) updateFilters(alloc *Allocation) error {
	s := &t.scratch.sdfu
	s.begin()
	for _, va := range alloc.Vertices {
		if va.Units == 0 {
			continue
		}
		for a := va.V.Parent(); a != nil; a = a.Parent() {
			f := a.Filter()
			if f == nil || f.PlannerByID(va.V.TypeID) == nil {
				continue
			}
			s.add(a, va.V.Type, va.Units)
		}
	}
	for i, owner := range s.owners {
		id, err := owner.Filter().AddSpanList(alloc.At, alloc.Duration, s.types[i], s.counts[i])
		t.g.MarkEpochDirty(owner)
		if err != nil {
			// Roll back filter spans added so far; vertex spans
			// are rolled back by the caller.
			for _, fs := range alloc.filterSpans {
				_ = fs.owner.Filter().RemoveSpan(fs.id)
			}
			alloc.filterSpans = nil
			return fmt.Errorf("traverser: SDFU failed at %s: %w", owner.Path(), err)
		}
		alloc.filterSpans = append(alloc.filterSpans, filterSpan{owner: owner, id: id})
	}
	return nil
}
