package traverser

import (
	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
)

// This file is the allocation-free match kernel. One match attempt walks
// the graph with a matcher backed by a reusable matchScratch:
//
//   - requests come precompiled (jobspec.Compiled): interned type IDs,
//     flattened nodes, and per-node aggregate needs, so no maps are
//     built while matching;
//   - per-vertex window availability (AvailDuring) is memoized for the
//     attempt in dense generation-stamped arrays, so the Order predicate
//     and tryCandidate never repeat a planner query;
//   - collect results are cached per (vertex, request node) for the
//     attempt, so a count-N slot walks the subtree once instead of N
//     times; under the first-fit policy a cursor additionally resumes
//     each scan past candidates proven exhausted;
//   - selections accumulate in a scratch log and are copied into the
//     returned Allocation only on success.
//
// Cache correctness: within one attempt the graph topology and status
// bits are frozen (the traverser holds the graph's reader lock) and
// pruning filters only change after the walk (SDFU runs at commit), so
// a cached candidate list can only be invalidated by a claim — or a
// rollback of a claim — of units on a vertex the collection descended
// through: a vertex with children that is not of the list's target type
// (collect never descends through target-type vertices). Such
// structural changes invalidate exactly the lists whose collection
// subtree contains the vertex; first-fit cursors are reset on any
// rollback, since restored capacity can revive a skipped candidate.

// matcher holds the state of one match attempt at a fixed (at, duration)
// window. Spans are committed eagerly and rolled back on failure, so
// partially matched slots never leak.
type matcher struct {
	t     *Traverser
	s     *matchScratch
	nodes []jobspec.CNode // compiled request vertices
	at    int64
	dur   int64
	dry   bool // capacity-only satisfiability check: no spans
	snap  bool // speculative run: per-vertex claims instead of spans
	// ep, when non-nil, is the pinned MVCC epoch of an epoch speculation
	// (snap mode only): status, subtree labels, planners, and filters are
	// read from its immutable snapshots with zero synchronization, and
	// tentative claims stay in the attempt's private scratch.
	ep *resgraph.Epoch
	// rot rotates first-fit candidate lists by a jobID-derived offset in
	// epoch mode, so concurrent speculators probe disjoint pools without
	// the shared claim counters the legacy path used for divergence.
	rot uint64
	// sig, when non-nil, accumulates blocking reasons as the walk prunes
	// or rejects candidates (see signature.go). Reasons survive
	// rollbacks on purpose: a rolled-back claim was still a real
	// constraint the job ran into.
	sig *BlockSig
}

// note records a blocking reason at v when signature capture is on.
func (m *matcher) note(v *resgraph.Vertex, typeID int32, shortfall int64) {
	if m.sig != nil {
		m.sig.noteVertex(v, typeID, shortfall)
	}
}

// up reports whether v is schedulable for this attempt: per the pinned
// epoch in epoch mode (v.Status would be a data race without the graph
// lock), per the live status bit otherwise.
func (m *matcher) up(v *resgraph.Vertex) bool {
	if m.ep != nil {
		return m.ep.Up(v.UniqID)
	}
	return v.Status == resgraph.StatusUp
}

// availUnits returns the units of v available throughout the window,
// memoized per vertex for the attempt (claims and rollbacks invalidate
// the vertex's entry). A speculative run additionally subtracts the
// units claimed by in-flight speculations (its own included) so
// concurrent first-fit searches diverge onto disjoint pools instead of
// colliding at commit.
func (m *matcher) availUnits(v *resgraph.Vertex) int64 {
	s := m.s
	uid := v.UniqID
	if s.availGen[uid] == s.gen {
		return s.avail[uid]
	}
	var a int64
	switch {
	case m.dry:
		a = v.Size - s.tentative[uid]
	case m.ep != nil:
		// Epoch mode: window availability from the immutable snapshot,
		// minus this attempt's own scratch-local tentative claims. No
		// shared state is read or written.
		if sn := m.ep.Plan(uid); sn != nil {
			if avail, err := sn.AvailDuring(m.at, m.dur); err == nil {
				a = avail
			}
		}
		a -= s.tentative[uid]
	default:
		avail, err := v.Planner().AvailDuring(m.at, m.dur)
		if err == nil {
			a = avail
		}
		if m.snap {
			a -= v.SpecClaims()
		}
	}
	s.avail[uid] = a
	s.availGen[uid] = s.gen
	return a
}

// claim plans units on v for the window and records the selection in the
// scratch log.
func (m *matcher) claim(v *resgraph.Vertex, units int64) bool {
	va := VertexAlloc{V: v, Units: units}
	if units > 0 {
		switch {
		case m.dry, m.ep != nil:
			m.s.tentative[v.UniqID] += units
		case m.snap:
			v.AddSpecClaim(units)
		default:
			id, err := v.Planner().AddSpan(m.at, m.dur, units)
			if err != nil {
				return false
			}
			va.span = id
			m.t.g.MarkEpochDirty(v)
		}
		m.s.availGen[v.UniqID] = 0 // drop the memoized availability
		if v.HasChildren(m.t.subsystem) {
			m.s.cands.structuralChange(v, m.t.containment, m.ep)
		}
	}
	m.s.verts = append(m.s.verts, va)
	return true
}

// rollbackTo undoes every claim past mark (an index into the scratch
// selection log) and resets first-fit cursors, since restored capacity
// can revive candidates a cursor skipped.
func (m *matcher) rollbackTo(mark int) {
	undo := m.s.verts[mark:]
	if len(undo) == 0 {
		return
	}
	for _, va := range undo {
		if va.Units == 0 {
			continue
		}
		switch {
		case m.dry, m.ep != nil:
			m.s.tentative[va.V.UniqID] -= va.Units
		case m.snap:
			va.V.AddSpecClaim(-va.Units)
		default:
			_ = va.V.Planner().RemoveSpan(va.span)
			m.t.g.MarkEpochDirty(va.V)
		}
		m.s.availGen[va.V.UniqID] = 0
		if va.V.HasChildren(m.t.subsystem) {
			m.s.cands.structuralChange(va.V, m.t.containment, m.ep)
		}
	}
	m.s.verts = m.s.verts[:mark]
	m.s.cands.resetCursors()
}

// matchForest satisfies every request in reqs (compiled node indexes)
// under vertex v.
func (m *matcher) matchForest(v *resgraph.Vertex, reqs []int32, excl bool) bool {
	for _, ri := range reqs {
		if !m.matchRequest(v, ri, excl) {
			return false
		}
	}
	return true
}

// matchRequest satisfies one compiled request vertex under v.
func (m *matcher) matchRequest(v *resgraph.Vertex, ni int32, excl bool) bool {
	cn := &m.nodes[ni]
	if cn.IsSlot {
		// A slot is a transparent grouping: its shape is matched
		// Count times under the current vertex, each instance
		// exclusively (paper §4.2). Moldable slots accept any
		// instance count down to MinCount.
		for i := int64(0); i < cn.Count; i++ {
			mark := len(m.s.verts)
			if !m.matchForest(v, cn.With, true) {
				m.rollbackTo(mark)
				return i >= cn.Min
			}
		}
		return true
	}

	needed := cn.Count
	if v.TypeID == cn.TypeID {
		// Self-match (e.g. a cluster-typed request at the root).
		needed -= m.tryCandidate(v, cn, excl, needed)
		return needed <= 0 || cn.Count-needed >= cn.Min
	}

	key := candKey{vertex: v.UniqID, node: ni}
	e := m.s.cands.lookup(key)
	if e == nil {
		buf := m.s.cands.getBuf()
		buf = m.collect(buf[:0], v, cn)
		if m.rot != 0 && len(buf) > 1 {
			// Epoch-mode divergence steering: rotate the traversal-order
			// list by a jobID-derived offset so concurrent first-fit
			// speculators start their scans at different pools. Done
			// once at collect time so cursors stay consistent.
			rotateVerts(buf, int(m.rot%uint64(len(buf))))
		}
		e = m.s.cands.put(key, v, cn.TypeID, buf)
	}

	if m.t.staticOrder {
		// First-fit: scan the cached traversal-order list from the
		// cursor, then advance the cursor past the leading run of
		// candidates now proven dead (failed, or drained to zero
		// availability) — without a rollback they stay dead, so the
		// next slot instance resumes where this one got traction.
		cands := e.cands
		start := int(e.cursor)
		dead := 0
		for j := start; j < len(cands) && needed > 0; j++ {
			c := cands[j]
			contrib := m.tryCandidate(c, cn, excl, needed)
			needed -= contrib
			if j == start+dead && (contrib == 0 || m.availUnits(c) <= 0) {
				dead++
			}
		}
		if dead > 0 {
			m.s.cands.advanceCursor(key, int32(start+dead))
		}
	} else {
		// Ranking policy: re-order a scratch copy of the cached list
		// every scan, exactly as the interpreted kernel re-ordered
		// each fresh collect (avail-dependent comparators may rank
		// differently as capacity drains).
		buf := m.s.pushOrdered(e.cands)
		m.t.policy.Order(buf, needed, func(c *resgraph.Vertex) bool {
			return m.availUnits(c) > 0
		})
		for _, c := range buf {
			if needed <= 0 {
				break
			}
			needed -= m.tryCandidate(c, cn, excl, needed)
		}
		m.s.popOrdered()
	}
	// Moldable requests accept any grant down to MinCount.
	if needed <= 0 || cn.Count-needed >= cn.Min {
		return true
	}
	// The request fell short under v: at least the units past the
	// moldable floor must come free somewhere beneath it.
	m.note(v, cn.TypeID, needed-(cn.Count-cn.Min))
	return false
}

// tryCandidate attempts to take (part of) request cn from candidate c,
// returning the units of cn's type it contributed (0 on failure). Claims
// made for a failed candidate are rolled back before returning.
func (m *matcher) tryCandidate(c *resgraph.Vertex, cn *jobspec.CNode, excl bool, needed int64) int64 {
	if !m.up(c) {
		return 0
	}
	exclusive := excl || cn.Exclusive
	avail := m.availUnits(c)

	var units, contribution int64
	if len(cn.With) > 0 {
		// Structural vertex: it hosts a nested shape. Exclusive use
		// consumes the whole pool; shared use grants traversal only
		// but requires the vertex not to be exclusively taken.
		if exclusive {
			if avail < c.Size {
				m.note(c, AnyType, c.Size-avail)
				return 0
			}
			units = c.Size
		} else {
			if avail <= 0 {
				m.note(c, AnyType, 1)
				return 0
			}
			units = 0
		}
		contribution = 1
	} else {
		// Leaf pool: take up to `needed` units. Pool units are
		// inherently dedicated, so exclusivity adds nothing for
		// size>1 pools; for singletons it is the whole vertex
		// either way.
		units = min(needed, avail)
		if units <= 0 {
			m.note(c, cn.TypeID, needed-max(avail, 0))
			return 0
		}
		contribution = units
	}

	// The candidate's own pruning filter must clear the nested shape's
	// aggregate needs before we descend (paper §3.4).
	if !m.dry && len(cn.With) > 0 && !m.filterAdmits(c, cn.Needs) {
		return 0
	}

	mark := len(m.s.verts)
	if len(cn.With) > 0 && !m.matchForest(c, cn.With, exclusive) {
		m.rollbackTo(mark)
		return 0
	}
	if !m.claim(c, units) {
		m.rollbackTo(mark)
		return 0
	}
	return contribution
}

// collect gathers candidate vertices of cn's type beneath v into out,
// walking the subsystem's edges through transparent intermediate levels.
// Descent is pruned at vertices that are exclusively allocated or whose
// pruning filter cannot cover one instance's aggregate needs.
func (m *matcher) collect(out []*resgraph.Vertex, v *resgraph.Vertex, cn *jobspec.CNode) []*resgraph.Vertex {
	// Kids is a zero-copy view into the containment topo slab, so the
	// whole descent is sequential reads of one shared array (overlay
	// subsystems return their stored adjacency slice).
	for _, c := range v.Kids(m.t.subsystem) {
		if !m.up(c) {
			continue
		}
		if c.TypeID == cn.TypeID {
			out = append(out, c)
			continue
		}
		if !c.HasChildren(m.t.subsystem) {
			continue // leaf of another type
		}
		if !m.dry {
			// Exclusivity prune: a fully planned structural
			// vertex hides its subtree.
			if m.availUnits(c) <= 0 {
				m.note(c, AnyType, 1)
				continue
			}
			if !m.filterAdmits(c, cn.Needs) {
				continue
			}
		}
		out = m.collect(out, c, cn)
	}
	return out
}

// filterAdmits checks c's pruning filter (if any) against the aggregate
// needs of one request instance, resolving member planners by interned
// type ID.
func (m *matcher) filterAdmits(c *resgraph.Vertex, needs []jobspec.TypeCount) bool {
	if m.ep != nil {
		ms := m.ep.Filter(c.UniqID)
		if ms == nil {
			return true
		}
		for i := range needs {
			sn := ms.ByID(needs[i].ID)
			if sn == nil {
				continue // filter does not track this type
			}
			if !sn.CanFit(m.at, m.dur, needs[i].Units) {
				return false
			}
		}
		return true
	}
	f := c.Filter()
	if f == nil {
		return true
	}
	for i := range needs {
		p := f.PlannerByID(needs[i].ID)
		if p == nil {
			continue // filter does not track this type
		}
		if !p.CanFit(m.at, m.dur, needs[i].Units) {
			// Only pay for the shortfall query when a signature is
			// actually being captured: this is the pruning hot path.
			if m.sig != nil {
				m.sig.noteVertex(c, needs[i].ID, p.ShortfallDuring(m.at, m.dur, needs[i].Units))
			}
			return false
		}
	}
	return true
}

// rotateVerts rotates s left by k (0 <= k < len(s)) in place via the
// triple-reversal trick, allocation-free.
func rotateVerts(s []*resgraph.Vertex, k int) {
	reverseVerts(s[:k])
	reverseVerts(s[k:])
	reverseVerts(s)
}

func reverseVerts(s []*resgraph.Vertex) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
