package traverser

import (
	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
)

// matcher holds the state of one match attempt at a fixed (at, duration)
// window. Spans are committed eagerly and rolled back on failure, so
// partially matched slots never leak.
type matcher struct {
	t     *Traverser
	at    int64
	dur   int64
	dry   bool // capacity-only satisfiability check: no spans
	snap  bool // speculative run: per-vertex claims instead of spans
	alloc *Allocation

	// tentative tracks per-vertex units claimed during a dry run, since
	// no planner spans record them.
	tentative map[int64]int64
}

// availUnits returns the units of v available throughout the window. A
// speculative run additionally subtracts the units claimed by in-flight
// speculations (its own included) so concurrent first-fit searches diverge
// onto disjoint pools instead of colliding at commit.
func (m *matcher) availUnits(v *resgraph.Vertex) int64 {
	if m.dry {
		return v.Size - m.tentative[v.UniqID]
	}
	avail, err := v.Planner().AvailDuring(m.at, m.dur)
	if err != nil {
		return 0
	}
	if m.snap {
		avail -= v.SpecClaims()
	}
	return avail
}

// claim plans units on v for the window and records the selection.
func (m *matcher) claim(v *resgraph.Vertex, units int64) bool {
	va := VertexAlloc{V: v, Units: units}
	if units > 0 {
		switch {
		case m.dry:
			m.tentative[v.UniqID] += units
		case m.snap:
			v.AddSpecClaim(units)
		default:
			id, err := v.Planner().AddSpan(m.at, m.dur, units)
			if err != nil {
				return false
			}
			va.span = id
		}
	}
	m.alloc.Vertices = append(m.alloc.Vertices, va)
	return true
}

// rollbackTo undoes every claim past mark (an index into alloc.Vertices).
func (m *matcher) rollbackTo(mark int) {
	for _, va := range m.alloc.Vertices[mark:] {
		if va.Units == 0 {
			continue
		}
		switch {
		case m.dry:
			m.tentative[va.V.UniqID] -= va.Units
		case m.snap:
			va.V.AddSpecClaim(-va.Units)
		default:
			_ = va.V.Planner().RemoveSpan(va.span)
		}
	}
	m.alloc.Vertices = m.alloc.Vertices[:mark]
}

// matchForest satisfies every request in reqs under vertex v.
func (m *matcher) matchForest(v *resgraph.Vertex, reqs []*jobspec.Resource, excl bool) bool {
	for _, req := range reqs {
		if !m.matchRequest(v, req, excl) {
			return false
		}
	}
	return true
}

// matchRequest satisfies one request vertex under v.
func (m *matcher) matchRequest(v *resgraph.Vertex, req *jobspec.Resource, excl bool) bool {
	if req.Type == jobspec.Slot {
		// A slot is a transparent grouping: its shape is matched
		// Count times under the current vertex, each instance
		// exclusively (paper §4.2). Moldable slots accept any
		// instance count down to MinCount.
		for i := int64(0); i < req.Count; i++ {
			mark := len(m.alloc.Vertices)
			if !m.matchForest(v, req.With, true) {
				m.rollbackTo(mark)
				return i >= req.MinCount()
			}
		}
		return true
	}

	need := instanceNeeds(req)
	var cands []*resgraph.Vertex
	if v.Type == req.Type {
		// Self-match (e.g. a cluster-typed request at the root).
		cands = []*resgraph.Vertex{v}
	} else {
		cands = m.collect(v, req.Type, need)
	}
	needed := req.Count
	m.t.policy.Order(cands, needed, func(c *resgraph.Vertex) bool {
		return m.availUnits(c) > 0
	})
	for _, c := range cands {
		if needed <= 0 {
			break
		}
		needed -= m.tryCandidate(c, req, excl, needed)
	}
	// Moldable requests accept any grant down to MinCount.
	return needed <= 0 || req.Count-needed >= req.MinCount()
}

// tryCandidate attempts to take (part of) req from candidate c, returning
// the units of req.Type it contributed (0 on failure). Claims made for a
// failed candidate are rolled back before returning.
func (m *matcher) tryCandidate(c *resgraph.Vertex, req *jobspec.Resource, excl bool, needed int64) int64 {
	if c.Status != resgraph.StatusUp {
		return 0
	}
	exclusive := excl || req.Exclusive
	avail := m.availUnits(c)

	var units, contribution int64
	if len(req.With) > 0 {
		// Structural vertex: it hosts a nested shape. Exclusive use
		// consumes the whole pool; shared use grants traversal only
		// but requires the vertex not to be exclusively taken.
		if exclusive {
			if avail < c.Size {
				return 0
			}
			units = c.Size
		} else {
			if avail <= 0 {
				return 0
			}
			units = 0
		}
		contribution = 1
	} else {
		// Leaf pool: take up to `needed` units. Pool units are
		// inherently dedicated, so exclusivity adds nothing for
		// size>1 pools; for singletons it is the whole vertex
		// either way.
		units = min64(needed, avail)
		if units <= 0 {
			return 0
		}
		contribution = units
	}

	// The candidate's own pruning filter must clear the nested shape's
	// aggregate needs before we descend (paper §3.4).
	if !m.dry && len(req.With) > 0 && !m.filterAdmits(c, instanceNeeds(req)) {
		return 0
	}

	mark := len(m.alloc.Vertices)
	if len(req.With) > 0 && !m.matchForest(c, req.With, exclusive) {
		m.rollbackTo(mark)
		return 0
	}
	if !m.claim(c, units) {
		m.rollbackTo(mark)
		return 0
	}
	return contribution
}

// collect gathers candidate vertices of the requested type beneath v,
// walking the subsystem's edges through transparent intermediate levels.
// Descent is pruned at vertices that are exclusively allocated or whose
// pruning filter cannot cover one instance's aggregate needs.
func (m *matcher) collect(v *resgraph.Vertex, typ string, need map[string]int64) []*resgraph.Vertex {
	var out []*resgraph.Vertex
	var walk func(x *resgraph.Vertex)
	walk = func(x *resgraph.Vertex) {
		x.EachChild(m.t.subsystem, func(c *resgraph.Vertex) bool {
			if c.Status != resgraph.StatusUp {
				return true
			}
			if c.Type == typ {
				out = append(out, c)
				return true
			}
			if len(c.Children(m.t.subsystem)) == 0 {
				return true // leaf of another type
			}
			if !m.dry {
				// Exclusivity prune: a fully planned structural
				// vertex hides its subtree.
				if m.availUnits(c) <= 0 {
					return true
				}
				if !m.filterAdmits(c, need) {
					return true
				}
			}
			walk(c)
			return true
		})
	}
	walk(v)
	return out
}

// filterAdmits checks c's pruning filter (if any) against the aggregate
// needs of one request instance.
func (m *matcher) filterAdmits(c *resgraph.Vertex, need map[string]int64) bool {
	f := c.Filter()
	if f == nil {
		return true
	}
	for rt, n := range need {
		p := f.Planner(rt)
		if p == nil {
			continue // filter does not track this type
		}
		if !p.CanFit(m.at, m.dur, n) {
			return false
		}
	}
	return true
}

// instanceNeeds returns the aggregate units per type one instance of req
// requires: one unit of req.Type (or the nested shape for slots) plus its
// subtree multiplied down.
func instanceNeeds(req *jobspec.Resource) map[string]int64 {
	agg := make(map[string]int64)
	// Pruning is an over-approximation: moldable requests count at
	// their minimum so a subtree able to host the smallest acceptable
	// instance is never pruned.
	var walk func(r *jobspec.Resource, mult int64)
	walk = func(r *jobspec.Resource, mult int64) {
		n := mult * r.MinCount()
		if r.Type != jobspec.Slot {
			agg[r.Type] += n
		}
		for _, c := range r.With {
			walk(c, n)
		}
	}
	if req.Type == jobspec.Slot {
		for _, c := range req.With {
			walk(c, 1)
		}
		return agg
	}
	agg[req.Type] = 1
	for _, c := range req.With {
		walk(c, 1)
	}
	return agg
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
