package traverser

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fluxion/internal/jobspec"
	"fluxion/internal/match"
)

// Tests for the compiled-jobspec entry points and the match kernel's
// scratch-state hygiene: decision parity between the compiled and
// uncompiled paths, moldable-slot edge cases, rollback restoration, and
// cross-graph rejection.

// randomSpec draws one of a few request shapes with randomized counts,
// deliberately including infeasible ones so error parity is exercised
// too.
func randomSpec(rng *rand.Rand) *jobspec.Jobspec {
	dur := int64(rng.Intn(200) + 1)
	switch rng.Intn(5) {
	case 0:
		return jobspec.NodeLocal(int64(rng.Intn(3)+1), int64(rng.Intn(2)+1),
			int64(rng.Intn(5)+1), int64(rng.Intn(20)), 0, dur)
	case 1:
		return jobspec.New(dur, jobspec.SlotR(int64(rng.Intn(6)+1),
			jobspec.R("core", int64(rng.Intn(3)+1))))
	case 2:
		return jobspec.New(dur, jobspec.R("node", int64(rng.Intn(3)+1),
			jobspec.Moldable("core", int64(rng.Intn(2)+1), int64(rng.Intn(4)+2))))
	case 3:
		return jobspec.New(dur, jobspec.Moldable(jobspec.Slot, 1, int64(rng.Intn(5)+1),
			jobspec.R("core", 2), jobspec.R("memory", int64(rng.Intn(6)+1))))
	default:
		return jobspec.New(dur, jobspec.RX("node", int64(rng.Intn(3)+1),
			jobspec.R("core", int64(rng.Intn(5)+1))))
	}
}

// TestCompiledUncompiledEquivalence drives two traversers over identical
// graphs with the same random job stream — one through MatchAllocate
// (which compiles internally per call), one through Compile +
// MatchAllocateCompiled — and requires identical decisions, placements,
// and errors at every step.
func TestCompiledUncompiledEquivalence(t *testing.T) {
	policies := []match.Policy{match.First{}, match.HighID{}, match.LowID{}, match.Locality{}}
	for _, pol := range policies {
		t.Run(pol.Name(), func(t *testing.T) {
			g1 := buildSmall(t, 2, 2, 4, 16, defaultSpec())
			g2 := buildSmall(t, 2, 2, 4, 16, defaultSpec())
			tr1 := newT(t, g1, pol)
			tr2 := newT(t, g2, pol)
			rng := rand.New(rand.NewSource(42))
			for job := int64(1); job <= 40; job++ {
				js := randomSpec(rng)
				cjs, cerr := tr2.Compile(js)
				if cerr != nil {
					t.Fatalf("job %d: compile failed: %v", job, cerr)
				}

				// Dry-run parity on both traversers before mutating.
				ok1, err1 := tr1.MatchSatisfy(js)
				ok2, err2 := tr2.MatchSatisfyCompiled(cjs)
				if ok1 != ok2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("job %d: satisfy diverged: (%v,%v) vs (%v,%v)", job, ok1, err1, ok2, err2)
				}

				a1, err1 := tr1.MatchAllocate(job, js, 0)
				a2, err2 := tr2.MatchAllocateCompiled(job, cjs, 0)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("job %d: allocate diverged: %v vs %v\nspec: %s", job, err1, err2, js)
				}
				if err1 != nil {
					if !errors.Is(err1, ErrNoMatch) || !errors.Is(err2, ErrNoMatch) {
						t.Fatalf("job %d: unexpected errors %v / %v", job, err1, err2)
					}
					continue
				}
				if d1, d2 := a1.Describe(), a2.Describe(); d1 != d2 {
					t.Fatalf("job %d: placements diverged:\nuncompiled: %s\ncompiled:   %s\nspec: %s", job, d1, d2, js)
				}
				// Occasionally cancel to exercise rollback/cache paths.
				if job%3 == 0 {
					if err := tr1.Cancel(job); err != nil {
						t.Fatal(err)
					}
					if err := tr2.Cancel(job); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

func TestCompiledReuseAcrossCalls(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	cjs, err := tr.Compile(jobspec.NodeLocal(1, 1, 4, 4, 0, 50))
	if err != nil {
		t.Fatal(err)
	}
	// One Compiled may back many jobs concurrently or sequentially.
	for job := int64(1); job <= 2; job++ {
		if _, err := tr.MatchAllocateCompiled(job, cjs, 0); err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
	}
	if _, err := tr.MatchAllocateCompiled(3, cjs, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("3rd job on 2 nodes' worth of cores: err = %v, want ErrNoMatch", err)
	}
}

func TestCheckCompiledRejectsForeignGraph(t *testing.T) {
	g1 := buildSmall(t, 1, 1, 2, 0, defaultSpec())
	g2 := buildSmall(t, 1, 1, 2, 0, defaultSpec())
	tr1 := newT(t, g1, match.First{})
	tr2 := newT(t, g2, match.First{})
	cjs, err := tr1.Compile(jobspec.New(10, jobspec.R("core", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.MatchAllocateCompiled(1, cjs, 0); err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Fatalf("foreign compiled spec: err = %v", err)
	}
	if _, err := tr2.MatchAllocateOrReserveCompiled(1, cjs, 0); err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Fatalf("foreign compiled reserve: err = %v", err)
	}
	if _, err := tr2.MatchSatisfyCompiled(cjs); err == nil {
		t.Fatal("foreign compiled satisfy accepted")
	}
	if _, err := tr2.MatchSpeculateCompiled(1, cjs, 0); err == nil {
		t.Fatal("foreign compiled speculate accepted")
	}
	if _, err := tr2.MatchAllocateCompiled(1, nil, 0); err == nil {
		t.Fatal("nil compiled spec accepted")
	}
}

// TestMoldableSlotPartialGrant exercises slot-level MinCount: the kernel
// must grant as many slot instances as fit, down to Min, and fail below
// it.
func TestMoldableSlotPartialGrant(t *testing.T) {
	g := buildSmall(t, 1, 1, 4, 0, defaultSpec()) // one node, 4 cores
	tr := newT(t, g, match.First{})

	// slot[4, min 2]{core[2]}: only 2 instances fit on 4 cores.
	js := jobspec.New(100, jobspec.Moldable(jobspec.Slot, 2, 4, jobspec.R("core", 2)))
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.Units("core"); got != 4 {
		t.Fatalf("granted %d core units, want 4 (2 of 4 slots)", got)
	}
	if err := tr.Cancel(1); err != nil {
		t.Fatal(err)
	}

	// Raising the floor above what fits must fail and leave no residue.
	js = jobspec.New(100, jobspec.Moldable(jobspec.Slot, 3, 4, jobspec.R("core", 2)))
	if _, err := tr.MatchAllocate(2, js, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("min 3 slots on 2-slot capacity: err = %v", err)
	}
	// Full capacity must still be there after the failed attempt.
	alloc, err = tr.MatchAllocate(3, jobspec.New(100, jobspec.SlotR(2, jobspec.R("core", 2))), 0)
	if err != nil {
		t.Fatalf("capacity not restored after failed moldable match: %v", err)
	}
	if got := alloc.Units("core"); got != 4 {
		t.Fatalf("granted %d core units after restore, want 4", got)
	}
}

// TestRollbackPastCollectionRestoresState forces a deep partial match
// that rolls back across cached candidate lists: the first slot instance
// claims a socket exclusively, the second fails, and the whole attempt
// unwinds. The planners and candidate caches must be as if the attempt
// never happened.
func TestRollbackPastCollectionRestoresState(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 0, defaultSpec()) // 2 nodes × 4 cores
	tr := newT(t, g, match.First{})

	// 2 exclusive nodes with 3 cores each fits; 3 does not (partial match
	// of 2 instances must roll back completely).
	infeasible := jobspec.New(100, jobspec.RX("node", 3, jobspec.R("core", 3)))
	if _, err := tr.MatchAllocate(1, infeasible, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}
	// After the rollback both nodes must still be exclusively allocatable.
	feasible := jobspec.New(100, jobspec.RX("node", 2, jobspec.R("core", 3)))
	alloc, err := tr.MatchAllocate(2, feasible, 0)
	if err != nil {
		t.Fatalf("state not restored after rolled-back match: %v", err)
	}
	if n := len(alloc.Nodes()); n != 2 {
		t.Fatalf("got %d nodes, want 2", n)
	}
	// Planner invariant: cancel and verify everything is free again.
	if err := tr.Cancel(2); err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Vertices() {
		avail, err := v.Planner().AvailDuring(0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if avail != v.Size {
			t.Fatalf("%s: avail %d != size %d after full cancel", v, avail, v.Size)
		}
	}
}

func TestIsTraversalOrder(t *testing.T) {
	if !match.IsTraversalOrder(match.First{}) {
		t.Fatal("First must be traversal-ordered")
	}
	for _, p := range []match.Policy{match.HighID{}, match.LowID{}, match.Locality{}, match.Variation{}} {
		if match.IsTraversalOrder(p) {
			t.Fatalf("%s must not be traversal-ordered", p.Name())
		}
	}
}
