package traverser

import (
	"fluxion/internal/resgraph"
)

// matchScratch is the reusable working memory of one match attempt. A
// traverser keeps one instance for the serialized paths (the write lock
// is held) and a sync.Pool for the lock-free ones (MatchSatisfy,
// MatchSpeculate), so steady-state matching allocates nothing.
//
// The dense per-vertex arrays are indexed by Vertex.UniqID and
// generation-stamped: begin bumps gen, and a slot is live only when its
// stamp equals the current generation, so reuse needs no clearing.
type matchScratch struct {
	// verts is the selection log of the attempt; successful matches copy
	// it into the returned Allocation.
	verts []VertexAlloc

	// avail memoizes availUnits per vertex; availGen stamps validity.
	avail    []int64
	availGen []uint32
	gen      uint32

	// tentative carries dry-run claims per vertex. It is kept zeroed
	// between attempts (dry runs always roll back fully) rather than
	// generation-stamped, so claims survive availability invalidation.
	tentative []int64

	// ordered holds per-recursion-depth copies of cached candidate lists
	// for ranking policies, which reorder destructively per scan.
	ordered [][]*resgraph.Vertex
	depth   int

	// structEpoch stamps which structural epoch generation the candidate
	// cache's recycled buffers belong to. When it changes (attach/detach
	// renumbered the tree), the free list is dropped so no buffer keeps
	// detached vertices reachable across epochs.
	structEpoch uint64

	cands candCache
	sdfu  sdfuScratch
}

// begin readies the scratch for an attempt over vertices with UniqID in
// [0, n), against structural epoch generation structEpoch.
func (s *matchScratch) begin(n int64, structEpoch uint64) {
	s.gen++
	if s.gen == 0 { // uint32 wrap: stale stamps could read as live
		for i := range s.availGen {
			s.availGen[i] = 0
		}
		s.gen = 1
	}
	if int64(len(s.avail)) < n {
		s.avail = make([]int64, n)
		s.availGen = make([]uint32, n)
		s.tentative = make([]int64, n)
	}
	s.verts = s.verts[:0]
	s.depth = 0
	if s.structEpoch != structEpoch {
		s.structEpoch = structEpoch
		s.cands.dropFree()
	}
	s.cands.reset()
}

// pushOrdered returns a scratch copy of cands for a ranking-policy scan,
// using the buffer for the current recursion depth (nested matchRequest
// calls during the scan use deeper buffers).
func (s *matchScratch) pushOrdered(cands []*resgraph.Vertex) []*resgraph.Vertex {
	for len(s.ordered) <= s.depth {
		s.ordered = append(s.ordered, nil)
	}
	buf := append(s.ordered[s.depth][:0], cands...)
	s.ordered[s.depth] = buf // keep any growth
	s.depth++
	return buf
}

// popOrdered releases the buffer taken by the matching pushOrdered.
func (s *matchScratch) popOrdered() { s.depth-- }

// candKey identifies a cached candidate list: the vertex the collection
// started from and the compiled request node it collected for.
type candKey struct {
	vertex int64 // Vertex.UniqID
	node   int32 // compiled node index
}

// candEntry is one cached candidate list. root/typeID support
// invalidation (which claims can affect this list); cursor is the
// first-fit resume point.
type candEntry struct {
	key    candKey
	root   *resgraph.Vertex
	typeID int32 // target type: claims on this type never invalidate
	valid  bool
	cursor int32
	cands  []*resgraph.Vertex
}

// candCache caches collect results within one match attempt. Entries
// live in a slice (reused across attempts) with a map index; candidate
// buffers are recycled through a free list at reset.
type candCache struct {
	entries []candEntry
	index   map[candKey]int32
	free    [][]*resgraph.Vertex
}

// reset clears the cache for a new attempt, recycling the candidate
// buffers of surviving entries.
func (c *candCache) reset() {
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.cands != nil {
			c.free = append(c.free, e.cands)
		}
		e.cands = nil
	}
	c.entries = c.entries[:0]
	if c.index == nil {
		c.index = make(map[candKey]int32)
	} else {
		clear(c.index)
	}
}

// dropFree releases the recycled candidate buffers to the garbage
// collector. Called when the structural epoch changes: a recycled buffer
// still holds pointers to the previous topology's vertices, and keeping
// it would pin detached subtrees in memory indefinitely.
func (c *candCache) dropFree() {
	for i := range c.free {
		c.free[i] = nil
	}
	c.free = c.free[:0]
}

// getBuf returns a recycled candidate buffer (or nil; append grows it).
func (c *candCache) getBuf() []*resgraph.Vertex {
	if n := len(c.free); n > 0 {
		buf := c.free[n-1]
		c.free = c.free[:n-1]
		return buf
	}
	return nil
}

// lookup returns the live entry for key, or nil.
func (c *candCache) lookup(key candKey) *candEntry {
	i, ok := c.index[key]
	if !ok {
		return nil
	}
	e := &c.entries[i]
	if !e.valid {
		return nil
	}
	return e
}

// put stores a fresh candidate list for key, reusing the key's
// invalidated slot when one exists. The returned pointer is valid until
// the next put (the entries slice may grow).
func (c *candCache) put(key candKey, root *resgraph.Vertex, typeID int32, cands []*resgraph.Vertex) *candEntry {
	if i, ok := c.index[key]; ok {
		e := &c.entries[i]
		*e = candEntry{key: key, root: root, typeID: typeID, valid: true, cands: cands}
		return e
	}
	i := int32(len(c.entries))
	c.entries = append(c.entries, candEntry{key: key, root: root, typeID: typeID, valid: true, cands: cands})
	c.index[key] = i
	return &c.entries[i]
}

// structuralChange invalidates every cached list whose collection walked
// through v: a claim (or rollback) on a vertex with children changes
// intermediate availability and filter admission, which pruned the
// collect descent. Lists targeting v's own type are immune — collect
// stops at target-type vertices and never descends through them. For
// the containment subsystem, v's pre-order interval restricts the sweep
// to lists rooted above v; other subsystems conservatively invalidate
// all.
//
// Invalidated buffers are dropped to the garbage collector rather than
// recycled: a scan higher up the recursion stack may still be iterating
// the slice, so handing it to a later collect would alias live state.
func (c *candCache) structuralChange(v *resgraph.Vertex, containment bool, ep *resgraph.Epoch) {
	for i := range c.entries {
		e := &c.entries[i]
		if !e.valid || e.typeID == v.TypeID {
			continue
		}
		if containment {
			// Epoch mode reads the subtree labels from the pinned epoch
			// — the live labels may be renumbered concurrently.
			if ep != nil {
				if !ep.InSubtree(e.root.UniqID, v.UniqID) {
					continue
				}
			} else if !v.InSubtreeOf(e.root) {
				continue
			}
		}
		e.valid = false
		e.cands = nil
	}
}

// resetCursors rewinds every first-fit cursor; called on rollback, since
// restored capacity can revive candidates a cursor skipped.
func (c *candCache) resetCursors() {
	for i := range c.entries {
		c.entries[i].cursor = 0
	}
}

// advanceCursor moves key's cursor forward. It re-resolves the entry
// through the index because entry pointers go stale when the slice
// grows.
func (c *candCache) advanceCursor(key candKey, cursor int32) {
	if i, ok := c.index[key]; ok {
		e := &c.entries[i]
		if e.valid && cursor > e.cursor {
			e.cursor = cursor
		}
	}
}

// sdfuScratch accumulates the per-filter-owner type/count lists of the
// scheduler-driven filter update (paper §3.4) in reusable buffers, in
// place of the per-commit map-of-maps the interpreted path built.
type sdfuScratch struct {
	owners []*resgraph.Vertex
	idx    map[*resgraph.Vertex]int32
	types  [][]string
	counts [][]int64
}

// begin readies the accumulator for one allocation's filter updates.
func (s *sdfuScratch) begin() {
	s.owners = s.owners[:0]
	if s.idx == nil {
		s.idx = make(map[*resgraph.Vertex]int32)
	} else {
		clear(s.idx)
	}
}

// add accumulates units of rt against owner's filter.
func (s *sdfuScratch) add(owner *resgraph.Vertex, rt string, units int64) {
	i, ok := s.idx[owner]
	if !ok {
		i = int32(len(s.owners))
		s.owners = append(s.owners, owner)
		s.idx[owner] = i
		for len(s.types) <= int(i) {
			s.types = append(s.types, nil)
			s.counts = append(s.counts, nil)
		}
		s.types[i] = s.types[i][:0]
		s.counts[i] = s.counts[i][:0]
	}
	for j, t := range s.types[i] {
		if t == rt {
			s.counts[i][j] += units
			return
		}
	}
	s.types[i] = append(s.types[i], rt)
	s.counts[i] = append(s.counts[i], units)
}
