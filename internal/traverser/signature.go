package traverser

import (
	"errors"
	"fmt"

	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
)

// This file implements blocking signatures: a compact record of *why* a
// match attempt failed, captured as the traversal unwinds. A signature is
// the bridge between one failed match and the capacity deltas published by
// the store (resgraph.Delta): an event-driven scheduler re-attempts a
// blocked job only when a delta intersects its signature, instead of
// re-matching the whole queue every cycle (see internal/sched).
//
// Soundness contract (no under-waking): every descent path the matcher
// prunes or fails records a reason naming the subtree interval, the
// resource type, and the shortfall that rejected it. A job can newly match
// only if its *first* failing constraint is relieved, which requires
// capacity of a matching type freed inside a recorded subtree — or a
// structural change, which voids all signatures. Spurious wake-ups are
// always safe: the woken job just fails again and re-captures.

// AnyType is the wildcard TypeID in a BlockReason: the constraint is
// relieved by freed capacity of any resource type in the subtree (used
// where the matcher rejects on a vertex's own pool, e.g. exclusivity).
const AnyType int32 = -1

// maxSigReasons bounds a signature's reason list. Beyond it the signature
// overflows and the job conservatively wakes on any free.
const maxSigReasons = 96

// BlockReason is one recorded rejection: the pruning vertex's containment
// pre-order interval, the interned resource type that fell short (or
// AnyType), and how many units were missing. A resgraph.DeltaFree
// intersects the reason when its vertex interval overlaps, its type
// matches, and — accumulated across deltas — it covers the shortfall.
type BlockReason struct {
	TreeIn, TreeOut int32
	TypeID          int32
	Shortfall       int64
}

// BlockSig is the blocking signature of one failed match attempt.
type BlockSig struct {
	// At and Dur frame the attempt's time window [At, At+Dur).
	At, Dur int64
	// HintAt is the root filter's earliest-fit hint (AvailTimeFirst over
	// the request's tracked totals): before HintAt the root aggregates
	// provably cannot host the request, so time alone cannot unblock the
	// job. HintAt == At means the hint has no discriminating power and
	// the holder should re-attempt every cycle.
	HintAt int64
	// Valid is set by a capture; a zero signature must wake always.
	Valid bool
	// Overflow marks a truncated reason list: any free may be relevant.
	Overflow bool
	// WakeAnyFree marks failures the signature cannot localize (e.g. a
	// reservation probe exhausted its depth): wake on any free.
	WakeAnyFree bool
	// Reasons is the recorded rejection set, deduplicated by
	// (TreeIn, TypeID) keeping the smallest shortfall. The holder may
	// decrement shortfalls as matching frees arrive; a reason reaching
	// zero wakes the job.
	Reasons []BlockReason
}

// reset re-arms the signature for a fresh capture at window [at, at+dur).
func (s *BlockSig) reset(at, dur int64) {
	s.At, s.Dur = at, dur
	s.HintAt = at
	s.Valid = true
	s.Overflow = false
	s.WakeAnyFree = false
	s.Reasons = s.Reasons[:0]
}

// record adds one rejection reason, deduplicating by (TreeIn, TypeID) and
// keeping the smaller shortfall (relieving the easier instance may already
// let the job through, so waking at the minimum is the sound side).
func (s *BlockSig) record(in, out, typeID int32, shortfall int64) {
	if s.Overflow {
		return
	}
	if shortfall < 1 {
		shortfall = 1
	}
	for i := range s.Reasons {
		r := &s.Reasons[i]
		if r.TreeIn == in && r.TypeID == typeID {
			if shortfall < r.Shortfall {
				r.Shortfall = shortfall
			}
			return
		}
	}
	if len(s.Reasons) >= maxSigReasons {
		s.Overflow = true
		return
	}
	s.Reasons = append(s.Reasons, BlockReason{TreeIn: in, TreeOut: out, TypeID: typeID, Shortfall: shortfall})
}

// noteVertex records a rejection at vertex v.
func (s *BlockSig) noteVertex(v *resgraph.Vertex, typeID int32, shortfall int64) {
	in, out := v.TreeInterval()
	s.record(in, out, typeID, shortfall)
}

// captureHint fills s.HintAt with the root filter's earliest time the
// request's tracked totals fit, clamped to at (at itself when the filter
// tracks nothing useful or a probe fails — i.e. "no hint, wake always").
func (t *Traverser) captureHint(cjs *jobspec.Compiled, at, dur int64, s *BlockSig) {
	hint := at
	rf := t.root.Filter()
	if rf == nil {
		s.HintAt = at
		return
	}
	for _, tc := range cjs.Totals() {
		if tc.Units <= 0 {
			continue
		}
		p := rf.PlannerByID(tc.ID)
		if p == nil {
			continue
		}
		h, err := p.AvailTimeFirst(at, dur, tc.Units)
		if err != nil {
			// No time fits within the horizon; near the horizon edge a
			// later (clamped-shorter) window may still fit, so the hint
			// cannot safely postpone the job.
			s.HintAt = at
			return
		}
		if h > hint {
			hint = h
		}
	}
	s.HintAt = hint
}

// MatchAllocateCompiledSig is MatchAllocateCompiled that, on ErrNoMatch,
// captures the attempt's blocking signature into sig (previous contents
// are discarded). sig may be nil to skip capture.
func (t *Traverser) MatchAllocateCompiledSig(jobID int64, cjs *jobspec.Compiled, at int64, sig *BlockSig) (*Allocation, error) {
	if err := t.checkCompiled(cjs); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.allocs[jobID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrExists, jobID)
	}
	alloc, err := t.tryMatch(jobID, cjs, at, modeCommit, sig, nil)
	if err != nil {
		if sig != nil && errors.Is(err, ErrNoMatch) {
			t.captureHint(cjs, at, t.effectiveDuration(cjs.Spec(), at), sig)
		}
		return nil, err
	}
	t.allocs[jobID] = alloc
	t.g.PublishEpoch()
	return alloc, nil
}

// MatchAllocateOrReserveCompiledSig is MatchAllocateOrReserveCompiled with
// signature capture. The signature reflects the immediate attempt at
// `now`; when even the reservation probe fails, the signature is marked
// WakeAnyFree since the failure spans future windows it cannot localize.
func (t *Traverser) MatchAllocateOrReserveCompiledSig(jobID int64, cjs *jobspec.Compiled, now int64, sig *BlockSig) (*Allocation, error) {
	if err := t.checkCompiled(cjs); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.allocs[jobID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrExists, jobID)
	}
	if alloc, err := t.tryMatch(jobID, cjs, now, modeCommit, sig, nil); err == nil {
		t.allocs[jobID] = alloc
		t.g.PublishEpoch()
		return alloc, nil
	}
	if sig != nil {
		t.captureHint(cjs, now, t.effectiveDuration(cjs.Spec(), now), sig)
	}
	alloc, err := t.reserveProbe(jobID, cjs, now)
	if err != nil {
		if sig != nil {
			sig.WakeAnyFree = true
		}
		return nil, err
	}
	return alloc, nil
}

// reserveProbe is the reservation half of allocateOrReserve: walk the root
// filter's candidate times and commit the first that matches. Callers hold
// t.mu and have already failed the immediate attempt at `now`. On success
// the reservation's per-vertex claims are published as DeltaClaim events
// so delta subscribers see future capacity being taken.
func (t *Traverser) reserveProbe(jobID int64, cjs *jobspec.Compiled, now int64) (*Allocation, error) {
	rf := t.root.Filter()
	if rf == nil {
		return nil, ErrNoFilter
	}
	counts := trackedCounts(cjs, rf)
	if len(counts) == 0 {
		return nil, fmt.Errorf("%w: root filter tracks none of the requested types", ErrNoFilter)
	}
	dur := t.effectiveDuration(cjs.Spec(), now)
	after := now
	for i := 0; i < t.maxReserveDepth; i++ {
		cand, err := rf.AvailPointTimeAfter(after, dur, counts)
		if err != nil {
			return nil, fmt.Errorf("%w: no candidate reservation time: %v", ErrNoMatch, err)
		}
		if alloc, err := t.tryMatch(jobID, cjs, cand, modeCommit, nil, nil); err == nil {
			alloc.Reserved = true
			t.allocs[jobID] = alloc
			t.publishClaims(alloc)
			t.g.PublishEpoch()
			return alloc, nil
		}
		after = cand
	}
	return nil, fmt.Errorf("%w: gave up after %d candidate times", ErrNoMatch, t.maxReserveDepth)
}

// publishClaims emits a DeltaClaim per consuming vertex of alloc.
// Reservation creation is the cold path, so per-vertex publication is
// affordable there; immediate allocations stay silent (a claim can never
// unblock a waiting job, and the scheduling loop that made it already
// accounts for it in queue order).
func (t *Traverser) publishClaims(alloc *Allocation) {
	g := t.g
	for _, va := range alloc.Vertices {
		if va.Units > 0 {
			g.PublishSpanDelta(resgraph.DeltaClaim, va.V, va.Units, alloc.At, alloc.At+alloc.Duration)
		}
	}
}

// publishFrees emits a DeltaFree per consuming vertex of alloc, after its
// spans were removed.
func (t *Traverser) publishFrees(alloc *Allocation) {
	g := t.g
	for _, va := range alloc.Vertices {
		if va.Units > 0 {
			g.PublishSpanDelta(resgraph.DeltaFree, va.V, va.Units, alloc.At, alloc.At+alloc.Duration)
		}
	}
}
