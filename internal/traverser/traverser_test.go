package traverser

import (
	"errors"
	"fmt"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
)

// buildSmall builds racks×nodes×cores (+memGB per node) with ALL:core,node
// pruning filters unless spec is explicitly nil-ed by passing empty.
func buildSmall(t *testing.T, racks, nodes, cores, memGB int64, spec resgraph.PruneSpec) *resgraph.Graph {
	t.Helper()
	g, err := grug.BuildGraph(grug.Small(racks, nodes, cores, memGB, 0), 0, 1<<30, spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func defaultSpec() resgraph.PruneSpec {
	return resgraph.PruneSpec{resgraph.ALL: {"core", "node", "memory"}}
}

func newT(t *testing.T, g *resgraph.Graph, policy match.Policy) *Traverser {
	t.Helper()
	tr, err := New(g, policy)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMatchAllocateBasic(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})

	js := jobspec.NodeLocal(1, 1, 2, 4, 0, 100)
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Reserved || alloc.At != 0 || alloc.Duration != 100 {
		t.Fatalf("alloc = %+v", alloc)
	}
	// 2 cores at 1 unit each + 4 GB memory consumed.
	var coreUnits, memUnits int64
	for _, va := range alloc.Vertices {
		switch va.V.Type {
		case "core":
			coreUnits += va.Units
		case "memory":
			memUnits += va.Units
		case "node":
			if va.Units != 0 {
				t.Fatalf("shared node consumed %d units", va.Units)
			}
		}
	}
	if coreUnits != 2 || memUnits != 4 {
		t.Fatalf("core=%d mem=%d", coreUnits, memUnits)
	}
	if len(alloc.Nodes()) != 1 {
		t.Fatalf("nodes = %v", alloc.Nodes())
	}
	if alloc.Describe() == "" {
		t.Fatal("empty Describe")
	}
}

func TestFillToCapacityAndCancel(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 64, defaultSpec())
	tr := newT(t, g, match.First{})
	js := jobspec.NodeLocal(1, 1, 2, 4, 0, 1000)

	// 2 nodes × 4 cores / 2 cores per job = 4 jobs fit.
	var ids []int64
	for i := int64(1); i <= 4; i++ {
		if _, err := tr.MatchAllocate(i, js, 0); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		ids = append(ids, i)
	}
	if _, err := tr.MatchAllocate(5, js, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("5th job: %v", err)
	}
	if got := tr.Jobs(); len(got) != 4 || got[0] != 1 {
		t.Fatalf("Jobs = %v", got)
	}
	// Cancel one; the 5th then fits.
	if err := tr.Cancel(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MatchAllocate(5, js, 0); err != nil {
		t.Fatalf("after cancel: %v", err)
	}
	if err := tr.Cancel(99); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

func TestDuplicateJobID(t *testing.T) {
	g := buildSmall(t, 1, 1, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	js := jobspec.NodeLocal(1, 1, 1, 1, 0, 10)
	if _, err := tr.MatchAllocate(1, js, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MatchAllocate(1, js, 0); !errors.Is(err, ErrExists) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := tr.MatchAllocateOrReserve(1, js, 0); !errors.Is(err, ErrExists) {
		t.Fatalf("dup reserve: %v", err)
	}
}

func TestSDFUFilterAccounting(t *testing.T) {
	g := buildSmall(t, 2, 2, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	root := g.Root(resgraph.Containment)
	coreAvail := func(v *resgraph.Vertex) int64 {
		a, err := v.Filter().Planner("core").AvailDuring(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if coreAvail(root) != 16 {
		t.Fatalf("initial root core avail = %d", coreAvail(root))
	}
	js := jobspec.NodeLocal(1, 1, 3, 0, 0, 100)
	if _, err := tr.MatchAllocate(1, js, 0); err != nil {
		t.Fatal(err)
	}
	if coreAvail(root) != 13 {
		t.Fatalf("root core avail after alloc = %d, want 13", coreAvail(root))
	}
	// Exactly one rack and one node absorbed the job.
	rackTotals := 0
	for _, r := range g.ByType("rack") {
		if coreAvail(r) == 5 {
			rackTotals++
		} else if coreAvail(r) != 8 {
			t.Fatalf("rack avail = %d", coreAvail(r))
		}
	}
	if rackTotals != 1 {
		t.Fatalf("racks touched = %d", rackTotals)
	}
	if err := tr.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if coreAvail(root) != 16 {
		t.Fatalf("root core avail after cancel = %d", coreAvail(root))
	}
	for _, r := range g.ByType("rack") {
		if coreAvail(r) != 8 {
			t.Fatalf("rack not restored: %d", coreAvail(r))
		}
	}
}

func TestMatchAllocateOrReserve(t *testing.T) {
	g := buildSmall(t, 1, 1, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})

	// Saturate the node's cores for [0, 100).
	if _, err := tr.MatchAllocate(1, jobspec.NodeLocal(1, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	// A 2-core job must be reserved at t=100.
	alloc, err := tr.MatchAllocateOrReserve(2, jobspec.NodeLocal(1, 1, 2, 0, 0, 50), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Reserved || alloc.At != 100 {
		t.Fatalf("alloc = %+v, want reserved at 100", alloc)
	}
	// A third job that fits right now allocates immediately (backfill).
	alloc3, err := tr.MatchAllocateOrReserve(3, jobspec.NodeLocal(1, 1, 2, 0, 0, 50), 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc3.Reserved {
		// cores are all busy at t=0, so this should also reserve —
		// but at 100 alongside job 2 (2+2 cores fit).
		if alloc3.At != 100 {
			t.Fatalf("job3 at %d", alloc3.At)
		}
	} else {
		t.Fatalf("job3 should be a reservation, got %+v", alloc3)
	}
	// A fourth 4-core job must land after the reserved jobs complete.
	alloc4, err := tr.MatchAllocateOrReserve(4, jobspec.NodeLocal(1, 1, 4, 0, 0, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc4.Reserved || alloc4.At != 150 {
		t.Fatalf("job4 = %+v, want reserved at 150", alloc4)
	}
}

func TestReserveRequiresRootFilter(t *testing.T) {
	g := buildSmall(t, 1, 1, 2, 16, nil) // no filters anywhere
	tr := newT(t, g, match.First{})
	if _, err := tr.MatchAllocate(1, jobspec.NodeLocal(1, 1, 2, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	_, err := tr.MatchAllocateOrReserve(2, jobspec.NodeLocal(1, 1, 1, 0, 0, 10), 0)
	if !errors.Is(err, ErrNoFilter) {
		t.Fatalf("want ErrNoFilter, got %v", err)
	}
}

func TestMatchSatisfy(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})

	ok, err := tr.MatchSatisfy(jobspec.NodeLocal(2, 1, 4, 8, 0, 10))
	if err != nil || !ok {
		t.Fatalf("feasible = %v, %v", ok, err)
	}
	// 5 cores per node exceeds the 4-core nodes.
	ok, err = tr.MatchSatisfy(jobspec.NodeLocal(1, 1, 5, 0, 0, 10))
	if err != nil || ok {
		t.Fatalf("infeasible cores = %v, %v", ok, err)
	}
	// 3 nodes exceed the 2-node system.
	ok, err = tr.MatchSatisfy(jobspec.NodeLocal(3, 1, 1, 0, 0, 10))
	if err != nil || ok {
		t.Fatalf("infeasible nodes = %v, %v", ok, err)
	}
	// Satisfiability ignores current allocations.
	if _, err := tr.MatchAllocate(1, jobspec.NodeLocal(2, 1, 4, 0, 0, 1<<29), 0); err != nil {
		t.Fatal(err)
	}
	ok, err = tr.MatchSatisfy(jobspec.NodeLocal(2, 1, 4, 0, 0, 10))
	if err != nil || !ok {
		t.Fatalf("busy but satisfiable = %v, %v", ok, err)
	}
	// And dry runs never leak claims.
	if ok, _ := tr.MatchSatisfy(jobspec.NodeLocal(2, 1, 4, 0, 0, 10)); !ok {
		t.Fatal("second satisfy call disagrees")
	}
}

func TestDryRunCountsWithinJob(t *testing.T) {
	// Two slots of 3 cores on a single 4-core node are unsatisfiable
	// even though each slot alone fits: the dry run must track
	// tentative usage.
	g := buildSmall(t, 1, 1, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	ok, err := tr.MatchSatisfy(jobspec.NodeLocal(1, 2, 3, 0, 0, 10))
	if err != nil || ok {
		t.Fatalf("two 3-core slots on a 4-core node: ok=%v err=%v", ok, err)
	}
}

func TestExclusiveNodeBlocksSharing(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})

	// Job 1 takes node exclusively (slot at cluster level over nodes).
	js := jobspec.New(100, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 2))))
	if _, err := tr.MatchAllocate(1, js, 0); err != nil {
		t.Fatal(err)
	}
	// Job 2 wants 4 cores on one node: only node1 has 4 free cores
	// (node0 is exclusively held even though only 2 cores are spanned).
	alloc, err := tr.MatchAllocate(2, jobspec.NodeLocal(1, 1, 4, 0, 0, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range alloc.Vertices {
		if va.V.Type == "core" && va.V.Parent().Name == "node0" {
			t.Fatalf("core from exclusively-held node0 granted: %s", va.V.Path())
		}
	}
	// A third exclusive-node job must fail (node1 now has shared users).
	if _, err := tr.MatchAllocate(3, js, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("exclusive over busy node: %v", err)
	}
}

func TestRackLevelSlots(t *testing.T) {
	// Paper Figure 4b shape: 2 racks, slots of 2 nodes each with 4 cores.
	g := buildSmall(t, 2, 3, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	js := jobspec.New(100,
		jobspec.R("rack", 2,
			jobspec.SlotR(1,
				jobspec.R("node", 2, jobspec.R("core", 4)))))
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := alloc.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(nodes))
	}
	racks := map[string]int{}
	for _, n := range nodes {
		racks[n.Parent().Name]++
	}
	if len(racks) != 2 || racks["rack0"] != 2 || racks["rack1"] != 2 {
		t.Fatalf("rack spread = %v", racks)
	}
}

func TestPolicyOrdering(t *testing.T) {
	g := buildSmall(t, 1, 4, 2, 16, defaultSpec())

	trHigh := newT(t, g, match.HighID{})
	alloc, err := trHigh.MatchAllocate(1, jobspec.NodeLocal(1, 1, 1, 0, 0, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := alloc.Nodes()[0]; n.Name != "node3" {
		t.Fatalf("high policy picked %s", n.Name)
	}
	if err := trHigh.Cancel(1); err != nil {
		t.Fatal(err)
	}

	trLow := newT(t, g, match.LowID{})
	alloc, err = trLow.MatchAllocate(2, jobspec.NodeLocal(1, 1, 1, 0, 0, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := alloc.Nodes()[0]; n.Name != "node0" {
		t.Fatalf("low policy picked %s", n.Name)
	}
}

func TestVariationPolicyPacksClasses(t *testing.T) {
	g := buildSmall(t, 1, 8, 2, 16, defaultSpec())
	// Classes: nodes 0-1 class 1, nodes 2-5 class 2, nodes 6-7 class 3.
	classes := []string{"1", "1", "2", "2", "2", "2", "3", "3"}
	for i, n := range g.ByType("node") {
		n.SetProperty(match.PerfClassKey, classes[i])
	}
	tr := newT(t, g, match.NewVariation(""))

	// A 4-node job fits entirely in class 2.
	alloc, err := tr.MatchAllocate(1, jobspec.NodeLocal(4, 1, 1, 0, 0, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	v := match.NewVariation("")
	for _, n := range alloc.Nodes() {
		if c := v.ClassOf(n, -1); c != 2 {
			t.Fatalf("node %s in class %d, want 2", n.Name, c)
		}
	}
	// A 2-node job now best-fits class 1 or 3 (both exactly 2 free).
	alloc2, err := tr.MatchAllocate(2, jobspec.NodeLocal(2, 1, 1, 0, 0, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, n := range alloc2.Nodes() {
		got[v.ClassOf(n, -1)] = true
	}
	if len(got) != 1 {
		t.Fatalf("2-node job spread across classes: %v", got)
	}
}

func TestDownVertexExcluded(t *testing.T) {
	g := buildSmall(t, 1, 2, 2, 16, defaultSpec())
	g.ByType("node")[0].Status = resgraph.StatusDown
	tr := newT(t, g, match.First{})
	alloc, err := tr.MatchAllocate(1, jobspec.NodeLocal(1, 1, 2, 0, 0, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Nodes()[0].Name != "node1" {
		t.Fatalf("matched down node: %s", alloc.Nodes()[0].Name)
	}
	// Both nodes needed -> impossible with one down.
	if _, err := tr.MatchAllocate(2, jobspec.NodeLocal(2, 1, 1, 0, 0, 10), 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("want ErrNoMatch, got %v", err)
	}
}

func TestInvalidJobspecRejected(t *testing.T) {
	g := buildSmall(t, 1, 1, 2, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	bad := jobspec.New(10, jobspec.R("node", 0))
	if _, err := tr.MatchAllocate(1, bad, 0); !errors.Is(err, jobspec.ErrInvalid) {
		t.Fatalf("invalid jobspec: %v", err)
	}
}

func TestPooledResourceSpansMultipleVertices(t *testing.T) {
	// Node with 2 memory pools of 8 GB each; a 12 GB request must span
	// both pools.
	g := resgraph.NewGraph(0, 1000)
	cl := g.MustAddVertex("cluster", -1, 1)
	nd := g.MustAddVertex("node", -1, 1)
	if err := g.AddContainment(cl, nd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m := g.MustAddVertex("memory", -1, 8)
		if err := g.AddContainment(nd, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr := newT(t, g, match.First{})
	js := jobspec.New(10, jobspec.R("node", 1, jobspec.SlotR(1, jobspec.R("memory", 12))))
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	pools := 0
	for _, va := range alloc.Vertices {
		if va.V.Type == "memory" {
			total += va.Units
			pools++
		}
	}
	if total != 12 || pools != 2 {
		t.Fatalf("memory: %d units over %d pools", total, pools)
	}
	// 4 more GB fit (16-12); a 5th does not.
	if _, err := tr.MatchAllocate(2, jobspec.New(10, jobspec.R("node", 1, jobspec.SlotR(1, jobspec.R("memory", 3)))), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MatchAllocate(3, jobspec.New(10, jobspec.R("node", 1, jobspec.SlotR(1, jobspec.R("memory", 1)))), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MatchAllocate(4, jobspec.New(10, jobspec.R("node", 1, jobspec.SlotR(1, jobspec.R("memory", 1)))), 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("over-capacity memory: %v", err)
	}
}

func TestReservationThenCancelRestoresFilters(t *testing.T) {
	g := buildSmall(t, 1, 1, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	if _, err := tr.MatchAllocate(1, jobspec.NodeLocal(1, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	alloc, err := tr.MatchAllocateOrReserve(2, jobspec.NodeLocal(1, 1, 4, 0, 0, 100), 0)
	if err != nil || !alloc.Reserved {
		t.Fatalf("reserve: %+v, %v", alloc, err)
	}
	// Cancel the reservation; a new reservation lands at the same time.
	if err := tr.Cancel(2); err != nil {
		t.Fatal(err)
	}
	alloc3, err := tr.MatchAllocateOrReserve(3, jobspec.NodeLocal(1, 1, 4, 0, 0, 100), 0)
	if err != nil || alloc3.At != 100 {
		t.Fatalf("re-reserve: %+v, %v", alloc3, err)
	}
}

func TestMatchOnAlternateSubsystem(t *testing.T) {
	// A "storage" subsystem overlays the containment tree: the cluster
	// feeds two rabbits holding ssd pools.
	g := resgraph.NewGraph(0, 1000)
	cl := g.MustAddVertex("cluster", -1, 1)
	for i := 0; i < 2; i++ {
		r := g.MustAddVertex("rabbit", -1, 1)
		if err := g.AddContainment(cl, r); err != nil {
			t.Fatal(err)
		}
		s := g.MustAddVertex("ssd", -1, 1024)
		if err := g.AddContainment(r, s); err != nil {
			t.Fatal(err)
		}
		// Storage overlay edges.
		if err := g.AddEdge(cl, r, "storage", "feeds"); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(r, s, "storage", "holds"); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	g.SetRoot("storage", cl)
	tr, err := New(g, match.First{}, WithSubsystem("storage"))
	if err != nil {
		t.Fatal(err)
	}
	js := jobspec.New(10, jobspec.R("rabbit", 1, jobspec.SlotR(1, jobspec.R("ssd", 512))))
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	var units int64
	for _, va := range alloc.Vertices {
		if va.V.Type == "ssd" {
			units += va.Units
		}
	}
	if units != 512 {
		t.Fatalf("ssd units = %d", units)
	}
}

func TestReleaseShrinksAllocation(t *testing.T) {
	g := buildSmall(t, 1, 4, 4, 16, defaultSpec())
	tr := newT(t, g, match.LowID{})
	js := jobspec.New(1000, jobspec.RX("node", 3, jobspec.R("core", 4)))
	alloc, err := tr.MatchAllocate(1, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Nodes()) != 3 {
		t.Fatalf("nodes = %d", len(alloc.Nodes()))
	}
	root := g.Root(resgraph.Containment)
	coreAvail := func() int64 {
		a, err := root.Filter().Planner("core").AvailDuring(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if coreAvail() != 4 { // 16 - 12
		t.Fatalf("core avail = %d", coreAvail())
	}

	// Release node0 and its cores.
	paths := []string{"/cluster0/rack0/node0"}
	for i := 0; i < 4; i++ {
		paths = append(paths, fmt.Sprintf("/cluster0/rack0/node0/core%d", i))
	}
	if err := tr.Release(1, paths); err != nil {
		t.Fatal(err)
	}
	alloc, _ = tr.Info(1)
	if len(alloc.Nodes()) != 2 {
		t.Fatalf("nodes after release = %d", len(alloc.Nodes()))
	}
	if coreAvail() != 8 {
		t.Fatalf("core avail after release = %d", coreAvail())
	}
	// node0 is schedulable again.
	if _, err := tr.MatchAllocate(2, jobspec.New(10, jobspec.RX("node", 2, jobspec.R("core", 4))), 0); err != nil {
		t.Fatalf("freed node not reusable: %v", err)
	}

	// Bad path changes nothing.
	if err := tr.Release(1, []string{"/nope"}); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("bad path: %v", err)
	}
	if err := tr.Release(99, nil); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("bad job: %v", err)
	}
}

func TestReleaseEverythingCancels(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	alloc, err := tr.MatchAllocate(1, jobspec.New(100, jobspec.RX("node", 1, jobspec.R("core", 4))), 0)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, va := range alloc.Vertices {
		paths = append(paths, va.V.Path())
	}
	if err := tr.Release(1, paths); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Info(1); ok {
		t.Fatal("job should be gone after full release")
	}
	if err := tr.Cancel(1); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel after full release: %v", err)
	}
}

func TestNetworkSubsystemBandwidth(t *testing.T) {
	// Paper Figure 1b: an IB core switch is a conduit to edge switches,
	// each a conduit to nodes, with bandwidth pools at each level. The
	// network subsystem overlays the containment tree; matching on it
	// allocates bandwidth along the conduit hierarchy. Requests for a
	// bare type accumulate across all pools beneath the match point
	// (the same flattening that makes racks transparent), so level
	// pinning uses the switch vertices.
	g := resgraph.NewGraph(0, 1000)
	cl := g.MustAddVertex("cluster", -1, 1)
	core := g.MustAddVertex("coreswitch", -1, 1)
	coreBW := g.MustAddVertex("bw", -1, 400) // 400 Gb/s at the core
	if err := g.AddContainment(cl, core); err != nil {
		t.Fatal(err)
	}
	if err := g.AddContainment(core, coreBW); err != nil {
		t.Fatal(err)
	}
	var edges []*resgraph.Vertex
	for i := 0; i < 2; i++ {
		edge := g.MustAddVertex("edgeswitch", -1, 1)
		ebw := g.MustAddVertex("bw", -1, 100)
		if err := g.AddContainment(core, edge); err != nil {
			t.Fatal(err)
		}
		if err := g.AddContainment(edge, ebw); err != nil {
			t.Fatal(err)
		}
		// Network overlay: conduit_of edges.
		if err := g.AddEdge(core, edge, "network", "conduit_of"); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(edge, ebw, "network", "provides"); err != nil {
			t.Fatal(err)
		}
		edges = append(edges, edge)
	}
	if err := g.AddEdge(core, coreBW, "network", "provides"); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	g.SetRoot("network", core)

	tr, err := New(g, match.First{}, WithSubsystem("network"))
	if err != nil {
		t.Fatal(err)
	}
	// 60 Gb/s pinned to one edge switch.
	js := jobspec.New(100,
		jobspec.R("edgeswitch", 1, jobspec.SlotR(1, jobspec.R("bw", 60))))
	if _, err := tr.MatchAllocate(1, js, 0); err != nil {
		t.Fatal(err)
	}
	// A second 60 must use the other edge switch (the first has 40
	// left and a slot cannot split across switches).
	alloc2, err := tr.MatchAllocate(2, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	usedEdge1 := false
	for _, va := range alloc2.Vertices {
		if va.V.Parent() == edges[1] && va.Units > 0 {
			usedEdge1 = true
		}
	}
	if !usedEdge1 {
		t.Fatalf("second job should use edgeswitch1: %s", alloc2.Describe())
	}
	// Third 60: 40+40 edge capacity remains but never on one switch.
	if _, err := tr.MatchAllocate(3, js, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("fragmented edge bandwidth: %v", err)
	}
	// A bare bw request drains every pool under the core switch:
	// 40 + 40 + 400 = 480 remain.
	if _, err := tr.MatchAllocate(4, jobspec.New(100, jobspec.R("bw", 460)), 0); err != nil {
		t.Fatalf("pooled bandwidth should fit: %v", err)
	}
	if _, err := tr.MatchAllocate(5, jobspec.New(100, jobspec.R("bw", 30)), 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("only 20 Gb/s remain, 30 must fail: %v", err)
	}
}

func TestMoldableLeafRequest(t *testing.T) {
	// A node with 4 cores, 1 already busy: a moldable 2-8 core request
	// gets the 3 remaining.
	g := buildSmall(t, 1, 1, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	if _, err := tr.MatchAllocate(1, jobspec.New(100, jobspec.SlotR(1, jobspec.R("core", 1))), 0); err != nil {
		t.Fatal(err)
	}
	js := jobspec.New(100, jobspec.SlotR(1, jobspec.Moldable("core", 2, 8)))
	alloc, err := tr.MatchAllocate(2, js, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cores int64
	for _, va := range alloc.Vertices {
		if va.V.Type == "core" {
			cores += va.Units
		}
	}
	if cores != 3 {
		t.Fatalf("moldable grant = %d cores, want 3", cores)
	}
	// Below the floor: only 0 cores remain.
	if _, err := tr.MatchAllocate(3, js, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("below min: %v", err)
	}
}

func TestMoldableSlots(t *testing.T) {
	// 3 free nodes; a moldable 2-8 node-slot job gets 3 instances.
	g := buildSmall(t, 1, 3, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	slot := jobspec.Moldable(jobspec.Slot, 2, 8, jobspec.R("node", 1, jobspec.R("core", 4)))
	alloc, err := tr.MatchAllocate(1, jobspec.New(100, slot), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(alloc.Nodes()); n != 3 {
		t.Fatalf("moldable slots = %d nodes, want 3", n)
	}
	// Nothing left: the floor of 2 cannot be met.
	if _, err := tr.MatchAllocate(2, jobspec.New(100, slot), 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("below min slots: %v", err)
	}
}

func TestMoldableSatisfiability(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	// min 2 nodes fits the 2-node system even though max is 16.
	js := jobspec.New(10, jobspec.Moldable(jobspec.Slot, 2, 16, jobspec.R("node", 1, jobspec.R("core", 4))))
	ok, err := tr.MatchSatisfy(js)
	if err != nil || !ok {
		t.Fatalf("moldable satisfy = %v, %v", ok, err)
	}
	// min 3 exceeds the system.
	js3 := jobspec.New(10, jobspec.Moldable(jobspec.Slot, 3, 16, jobspec.R("node", 1, jobspec.R("core", 4))))
	ok, err = tr.MatchSatisfy(js3)
	if err != nil || ok {
		t.Fatalf("infeasible moldable = %v, %v", ok, err)
	}
}

func TestMoldableReservationUsesFloor(t *testing.T) {
	// System busy [0,100). A moldable 1-4 node job reserves at 100 and
	// then grabs everything available there.
	g := buildSmall(t, 1, 4, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	if _, err := tr.MatchAllocate(1, jobspec.New(100, jobspec.RX("node", 4, jobspec.R("core", 4))), 0); err != nil {
		t.Fatal(err)
	}
	js := jobspec.New(50, jobspec.Moldable(jobspec.Slot, 1, 4, jobspec.R("node", 1, jobspec.R("core", 4))))
	alloc, err := tr.MatchAllocateOrReserve(2, js, 0)
	if err != nil || !alloc.Reserved || alloc.At != 100 {
		t.Fatalf("alloc = %+v, %v", alloc, err)
	}
	if n := len(alloc.Nodes()); n != 4 {
		t.Fatalf("reserved moldable grabbed %d nodes, want 4", n)
	}
}

func TestReinstall(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 16, defaultSpec())
	tr := newT(t, g, match.First{})
	alloc, err := tr.MatchAllocate(1, jobspec.NodeLocal(1, 1, 2, 4, 0, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	grants := alloc.Grants()
	if len(grants) != len(alloc.Vertices) {
		t.Fatalf("grants = %d", len(grants))
	}
	if err := tr.Cancel(1); err != nil {
		t.Fatal(err)
	}
	// Reinstall reproduces the allocation exactly.
	back, err := tr.Reinstall(1, alloc.At, alloc.Duration, false, grants)
	if err != nil {
		t.Fatal(err)
	}
	if back.Describe() != alloc.Describe() {
		t.Fatalf("describe mismatch:\n%s\n%s", back.Describe(), alloc.Describe())
	}
	// Filters were updated: root sees 2 cores busy.
	root := g.Root(resgraph.Containment)
	avail, err := root.Filter().Planner("core").AvailDuring(0, 10)
	if err != nil || avail != 6 {
		t.Fatalf("root core avail = %d, %v", avail, err)
	}
	// Errors: duplicate ID, unknown path, conflicting capacity, bad
	// duration.
	if _, err := tr.Reinstall(1, 0, 10, false, grants); !errors.Is(err, ErrExists) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := tr.Reinstall(2, 0, 10, false, []Grant{{Path: "/nope", Units: 1}}); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("bad path: %v", err)
	}
	if _, err := tr.Reinstall(2, 0, 0, false, nil); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("bad duration: %v", err)
	}
	// Conflicting: re-claim the same cores under a new ID.
	if _, err := tr.Reinstall(2, alloc.At, alloc.Duration, false, grants); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("conflict: %v", err)
	}
	// Atomic rollback on conflict: capacity unchanged.
	avail2, _ := root.Filter().Planner("core").AvailDuring(0, 10)
	if avail2 != 6 {
		t.Fatalf("conflict leaked spans: avail = %d", avail2)
	}
}

func TestMaxReserveDepth(t *testing.T) {
	// 2 nodes x 2 cores, fragmented so that at the first candidate time
	// the aggregate fits but no single node does: the reservation needs
	// a second probe, which depth 1 forbids.
	g := buildSmall(t, 1, 2, 2, 0, defaultSpec())
	tr, err := New(g, match.First{}, WithMaxReserveDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Graph() != g || tr.Policy().Name() != "first" {
		t.Fatal("accessors")
	}
	durations := []int64{100, 300, 100, 300}
	for i, d := range durations {
		if _, err := tr.MatchAllocate(int64(i+1), jobspec.NodeLocal(1, 1, 1, 0, 0, d), 0); err != nil {
			t.Fatal(err)
		}
	}
	// At t=100 each node has 1 free core (aggregate 2), so the filter
	// proposes t=100 but a 2-core single-node slot cannot match there.
	js := jobspec.NodeLocal(1, 1, 2, 0, 0, 50)
	if _, err := tr.MatchAllocateOrReserve(5, js, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("depth-1 should give up: %v", err)
	}
	// With the default depth the same request reserves at t=300.
	tr2 := newT(t, g, match.First{})
	alloc, err := tr2.MatchAllocateOrReserve(5, js, 0)
	if err != nil || !alloc.Reserved || alloc.At != 300 {
		t.Fatalf("alloc = %+v, %v", alloc, err)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, match.First{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := resgraph.NewGraph(0, 100)
	g.MustAddVertex("cluster", -1, 1)
	if _, err := New(g, match.First{}); err == nil {
		t.Fatal("unfinalized graph accepted")
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Unknown subsystem root.
	if _, err := New(g, match.First{}, WithSubsystem("nope")); err == nil {
		t.Fatal("unknown subsystem accepted")
	}
	// Nil policy defaults to first.
	tr, err := New(g, nil)
	if err != nil || tr.Policy().Name() != "first" {
		t.Fatalf("nil policy: %v", err)
	}
}

func TestAffectedJobsAndEvict(t *testing.T) {
	g := buildSmall(t, 2, 2, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	// j1 on node0+node1 (rack0), j2 on node2 (rack1).
	if _, err := tr.MatchAllocate(1, jobspec.NodeLocal(2, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MatchAllocate(2, jobspec.NodeLocal(1, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	a1, _ := tr.Info(1)
	a2, _ := tr.Info(2)
	if len(a1.Nodes()) != 2 || len(a2.Nodes()) != 1 {
		t.Fatalf("layout: j1=%s j2=%s", a1.Describe(), a2.Describe())
	}
	n0 := a1.Nodes()[0]
	other := a2.Nodes()[0]

	got := tr.AffectedJobs(n0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("affected(%s) = %v", n0.Path(), got)
	}
	if got := tr.AffectedJobs(g.Root(resgraph.Containment)); len(got) != 2 {
		t.Fatalf("affected(root) = %v", got)
	}
	// "/...node0" must not swallow a hypothetical sibling prefix.
	if !pathWithin("/a/node1/core0", "/a/node1") || pathWithin("/a/node10", "/a/node1") {
		t.Fatal("pathWithin prefix semantics")
	}

	if tr.JobCount() != 2 {
		t.Fatalf("JobCount = %d", tr.JobCount())
	}
	evicted, err := tr.Evict(1)
	if err != nil || evicted == nil || evicted.JobID != 1 {
		t.Fatalf("evict: %+v, %v", evicted, err)
	}
	if tr.JobCount() != 1 {
		t.Fatalf("JobCount after evict = %d", tr.JobCount())
	}
	if _, err := tr.Evict(1); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("double evict: %v", err)
	}
	// Evicted capacity is reusable immediately.
	if _, err := tr.MatchAllocate(3, jobspec.NodeLocal(2, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatalf("reuse after evict: %v", err)
	}
	_ = other
}

func TestMarkDownEvictsAndExcludesCapacity(t *testing.T) {
	g := buildSmall(t, 2, 2, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	root := g.Root(resgraph.Containment)

	// Fill one node with j1; leave the rest idle.
	if _, err := tr.MatchAllocate(1, jobspec.NodeLocal(1, 1, 4, 0, 0, 1000), 0); err != nil {
		t.Fatal(err)
	}
	a1, _ := tr.Info(1)
	victim := a1.Nodes()[0].Path()

	evicted, err := tr.MarkDown(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].JobID != 1 {
		t.Fatalf("evicted = %+v", evicted)
	}
	if tr.JobCount() != 0 {
		t.Fatal("job survived MarkDown")
	}
	// The job's core units are reported for lost-work accounting.
	if evicted[0].Units("core") != 4 {
		t.Fatalf("units = %d", evicted[0].Units("core"))
	}

	// Regression: the root filter aggregates exclude the downed subtree,
	// so a request needing all 4 nodes is rejected at the fast-fail
	// check rather than after a deep traversal.
	rf := root.Filter()
	if avail, _ := rf.Planner("node").AvailDuring(0, 1); avail != 3 {
		t.Fatalf("root node aggregate = %d", avail)
	}
	if avail, _ := rf.Planner("core").AvailDuring(0, 1); avail != 12 {
		t.Fatalf("root core aggregate = %d", avail)
	}
	if _, err := tr.MatchAllocate(2, jobspec.NodeLocal(4, 1, 4, 0, 0, 10), 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("4-node job on 3-node system: %v", err)
	}
	// MatchSatisfy sees only surviving capacity.
	if ok, _ := tr.MatchSatisfy(jobspec.NodeLocal(4, 1, 4, 0, 0, 10)); ok {
		t.Fatal("satisfy ignored downed node")
	}
	if ok, _ := tr.MatchSatisfy(jobspec.NodeLocal(3, 1, 4, 0, 0, 10)); !ok {
		t.Fatal("3 nodes should remain satisfiable")
	}

	// Reservations route around the downed node.
	if _, err := tr.MatchAllocate(3, jobspec.NodeLocal(3, 1, 4, 0, 0, 50), 0); err != nil {
		t.Fatal(err)
	}
	res, err := tr.MatchAllocateOrReserve(4, jobspec.NodeLocal(3, 1, 4, 0, 0, 10), 0)
	if err != nil || !res.Reserved || res.At != 50 {
		t.Fatalf("reserve around failure: %+v, %v", res, err)
	}

	// Repair: capacity returns and the 4-node job fits again.
	if err := tr.MarkUp(victim); err != nil {
		t.Fatal(err)
	}
	if avail, _ := rf.Planner("node").AvailDuring(0, 1); avail != 4 {
		t.Fatalf("restored node aggregate = %d", avail)
	}
	if ok, _ := tr.MatchSatisfy(jobspec.NodeLocal(4, 1, 4, 0, 0, 10)); !ok {
		t.Fatal("repair did not restore satisfiability")
	}
}

func TestMarkDownSubtreeWithMultiNodeJob(t *testing.T) {
	// A rack failure evicts a job spanning nodes in that rack even when
	// the job also holds grants elsewhere? (Jobs are placed per-policy;
	// here j1 spans both racks, so downing either rack evicts it.)
	g := buildSmall(t, 2, 2, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	if _, err := tr.MatchAllocate(1, jobspec.NodeLocal(3, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	evicted, err := tr.MarkDown("/cluster0/rack1")
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].JobID != 1 {
		t.Fatalf("evicted = %+v", evicted)
	}
	// Only rack0's 2 nodes remain.
	if ok, _ := tr.MatchSatisfy(jobspec.NodeLocal(3, 1, 4, 0, 0, 10)); ok {
		t.Fatal("3 nodes satisfiable with a rack down")
	}
	if _, err := tr.MatchAllocate(2, jobspec.NodeLocal(2, 1, 4, 0, 0, 10), 0); err != nil {
		t.Fatalf("surviving rack unusable: %v", err)
	}
	if err := tr.MarkUp("/cluster0/rack1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MarkDown("/nowhere"); err == nil {
		t.Fatal("unknown path accepted")
	}
	if err := tr.MarkUp("/nowhere"); err == nil {
		t.Fatal("unknown path accepted")
	}
}
