package traverser

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
)

// TestEpochCommitFastPath verifies the MVCC commit protocol end to end: a
// speculation against a stable epoch commits without per-vertex
// re-validation, a speculation whose capacity was taken conflicts, and a
// speculation whose node went down conflicts.
func TestEpochCommitFastPath(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	js := jobspec.NodeLocal(1, 1, 4, 0, 0, 100)
	cjs, err := tr.Compile(js)
	if err != nil {
		t.Fatal(err)
	}

	// Stable pin: nothing changed between speculation and commit.
	ep := tr.PinEpoch()
	if ep == nil {
		t.Fatal("no epoch to pin")
	}
	spec, err := tr.MatchSpeculateCompiledEpoch(1, cjs, 0, ep)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Commit(spec); err != nil {
		t.Fatalf("stable commit: %v", err)
	}
	if g.EpochVersion() <= ep.Version() {
		t.Fatal("commit did not publish an epoch transition")
	}

	// Capacity conflict: two speculations against the same epoch both
	// want the one remaining node; the second must fail at commit and
	// the failure must roll back cleanly (a later job still fits).
	ep2 := tr.PinEpoch()
	specA, err := tr.MatchSpeculateCompiledEpoch(2, cjs, 0, ep2)
	if err != nil {
		t.Fatal(err)
	}
	specB, err := tr.MatchSpeculateCompiledEpoch(3, cjs, 0, ep2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Commit(specA); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	if err := tr.Commit(specB); !errors.Is(err, ErrConflict) {
		t.Fatalf("second commit = %v, want ErrConflict", err)
	}
	if err := tr.Cancel(2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MatchAllocateCompiled(3, cjs, 0); err != nil {
		t.Fatalf("post-conflict state corrupt: %v", err)
	}
	if err := tr.Cancel(3); err != nil {
		t.Fatal(err)
	}

	// Down conflict: the speculated node goes down before commit.
	ep3 := tr.PinEpoch()
	specC, err := tr.MatchSpeculateCompiledEpoch(4, cjs, 0, ep3)
	if err != nil {
		t.Fatal(err)
	}
	if len(specC.Nodes()) != 1 {
		t.Fatalf("nodes = %v", specC.Nodes())
	}
	if _, err := tr.MarkDown(specC.Nodes()[0].Path()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Commit(specC); !errors.Is(err, ErrConflict) {
		t.Fatalf("down commit = %v, want ErrConflict", err)
	}
}

// TestEpochSpeculationSeesPinnedState verifies speculation reads the
// pinned epoch, not live state: capacity granted after the pin is
// invisible, capacity taken after the pin is still offered (and caught at
// commit instead).
func TestEpochSpeculationSeesPinnedState(t *testing.T) {
	g := buildSmall(t, 1, 1, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	js := jobspec.NodeLocal(1, 1, 4, 0, 0, 100)
	cjs, err := tr.Compile(js)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single node, then pin: the epoch has no capacity.
	if _, err := tr.MatchAllocateCompiled(1, cjs, 0); err != nil {
		t.Fatal(err)
	}
	ep := tr.PinEpoch()
	// Free the capacity after the pin; the pinned epoch must still fail.
	if err := tr.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MatchSpeculateCompiledEpoch(2, cjs, 0, ep); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("speculation against stale full epoch = %v, want ErrNoMatch", err)
	}
	// A fresh pin sees the freed capacity.
	if spec, err := tr.MatchSpeculateCompiledEpoch(2, cjs, 0, tr.PinEpoch()); err != nil {
		t.Fatalf("fresh pin: %v", err)
	} else if err := tr.Commit(spec); err != nil {
		t.Fatal(err)
	}
}

// TestEpochChurnRace is the -race epoch-churn stress: one writer thrashes
// node status (down/up) and topology (grow/shrink) while 8 workers
// speculate against pinned snapshots and commit. Asserts no torn reads
// (the matcher would panic or the race detector fire), monotone epoch
// versions, and that every committed allocation validated against live
// state (its vertices were up at commit).
func TestEpochChurnRace(t *testing.T) {
	g := buildSmall(t, 2, 4, 4, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	tr.EnableSteering()
	js := jobspec.NodeLocal(1, 1, 2, 0, 0, 50)
	cjs, err := tr.Compile(js)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 120
	var jobSeq atomic.Int64
	var committed atomic.Int64
	var conflicts atomic.Int64
	stop := make(chan struct{})

	// Version observer: published epochs never go backwards.
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		last := uint64(0)
		for {
			v := g.EpochVersion()
			if v < last {
				t.Errorf("epoch version regressed: %d -> %d", last, v)
				return
			}
			last = v
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	// Writer: down/up a rotating node, and periodically grow a scratch
	// node onto rack0 then shrink it back off.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rack0 := g.ByPath("/cluster0/rack0")
		node0 := rack0.Children(resgraph.Containment)[0]
		for i := 0; i < rounds; i++ {
			if _, err := tr.MarkDown(node0.Path()); err != nil {
				t.Errorf("down: %v", err)
				return
			}
			if err := tr.MarkUp(node0.Path()); err != nil {
				t.Errorf("up: %v", err)
				return
			}
			if i%10 == 0 {
				grown := g.MustAddVertex("node", -1, 1)
				c := g.MustAddVertex("core", -1, 1)
				if err := g.AddContainment(grown, c); err != nil {
					t.Errorf("grow: %v", err)
					return
				}
				if err := g.Attach(rack0, grown); err != nil {
					t.Errorf("attach: %v", err)
					return
				}
				if err := g.Detach(grown); err != nil && !errors.Is(err, resgraph.ErrBusy) {
					t.Errorf("detach: %v", err)
					return
				}
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ep := tr.PinEpoch()
				if ep == nil {
					t.Error("nil epoch pinned")
					return
				}
				id := jobSeq.Add(1)
				spec, err := tr.MatchSpeculateCompiledEpoch(id, cjs, 0, ep)
				if err != nil {
					continue // epoch had no capacity: fine
				}
				if err := tr.Commit(spec); err != nil {
					if !errors.Is(err, ErrConflict) {
						t.Errorf("commit: %v", err)
						return
					}
					conflicts.Add(1)
					continue
				}
				committed.Add(1)
				if i%3 != 0 {
					// The writer's MarkDown evicts allocations on the downed
					// node, so our job may already be gone — that's the
					// documented down-node semantics, not a test failure.
					if err := tr.Cancel(id); err != nil && !errors.Is(err, ErrUnknownJob) {
						t.Errorf("cancel: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	obs.Wait()
	if committed.Load() == 0 {
		t.Fatal("stress committed nothing")
	}
	t.Logf("committed=%d conflicts=%d final epoch v%d",
		committed.Load(), conflicts.Load(), g.EpochVersion())
}

// TestEpochDeepImmutability pins one epoch and hashes every vertex's
// snapshot state, then runs 1k concurrent commit/cancel transitions and
// re-hashes: the pinned epoch must be bit-identical.
func TestEpochDeepImmutability(t *testing.T) {
	g := buildSmall(t, 2, 4, 8, 0, defaultSpec())
	tr := newT(t, g, match.First{})
	js := jobspec.NodeLocal(1, 1, 2, 0, 0, 40)
	cjs, err := tr.Compile(js)
	if err != nil {
		t.Fatal(err)
	}
	// Some standing state so the epoch is not trivial.
	if _, err := tr.MatchAllocateCompiled(1, cjs, 0); err != nil {
		t.Fatal(err)
	}

	ep := tr.PinEpoch()
	hash := func() uint64 {
		var h uint64 = 14695981039346656037
		mix := func(x uint64) {
			h ^= x
			h *= 1099511628211
		}
		for uid := int64(0); uid < ep.UniqBound(); uid++ {
			up := uint64(0)
			if ep.Up(uid) {
				up = 1
			}
			in, out := ep.TreeInterval(uid)
			mix(up | uint64(uint32(in))<<8 | uint64(uint32(out))<<24)
			if p := ep.Plan(uid); p != nil {
				for t := int64(0); t < 200; t += 20 {
					a, _ := p.AvailDuring(t, 10)
					mix(uint64(a) + 31*uint64(t))
				}
			}
		}
		return h
	}
	before := hash()

	var wg sync.WaitGroup
	var seq atomic.Int64
	seq.Store(1)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				id := seq.Add(1)
				if alloc, err := tr.MatchSpeculateCompiledEpoch(id, cjs, 0, tr.PinEpoch()); err == nil {
					if err := tr.Commit(alloc); err == nil {
						_ = tr.Cancel(id)
					}
				}
			}
		}()
	}
	// Interleaved readers verify mid-churn, not just at the end.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if h := hash(); h != before {
					t.Errorf("pinned epoch hash diverged mid-churn")
					return
				}
			}
		}()
	}
	wg.Wait()
	if h := hash(); h != before {
		t.Fatalf("pinned epoch mutated by 1k concurrent transitions: %x != %x", h, before)
	}
}

// TestLegacyPathStillWorks pins the non-MVCC configuration: speculation
// under WithMVCC(false) takes the claims path and commits release claims.
func TestLegacyPathStillWorks(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 0, defaultSpec())
	tr, err := New(g, match.First{}, WithMVCC(false))
	if err != nil {
		t.Fatal(err)
	}
	js := jobspec.NodeLocal(1, 1, 4, 0, 0, 100)
	cjs, err := tr.Compile(js)
	if err != nil {
		t.Fatal(err)
	}
	if ep := tr.PinEpoch(); ep != nil {
		t.Fatal("non-MVCC traverser pinned an epoch")
	}
	spec, err := tr.MatchSpeculateCompiled(1, cjs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Legacy speculation holds per-vertex claims until commit/abandon.
	var claimed int64
	for _, va := range spec.Vertices {
		claimed += va.V.SpecClaims()
	}
	if claimed == 0 {
		t.Fatal("legacy speculation holds no claims")
	}
	if err := tr.Commit(spec); err != nil {
		t.Fatal(err)
	}
	for _, va := range spec.Vertices {
		if va.V.SpecClaims() != 0 {
			t.Fatalf("claims leaked on %s", va.V.Name)
		}
	}
	spec2, err := tr.MatchSpeculateCompiled(2, cjs, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Abandon(spec2)
	for _, va := range spec2.Vertices {
		if va.V.SpecClaims() != 0 {
			t.Fatalf("claims leaked after abandon on %s", va.V.Name)
		}
	}
}
