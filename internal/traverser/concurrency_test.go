package traverser

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
)

// checkQuiescent asserts the store is back to a fully idle, consistent
// state: every planner and filter passes its invariant checker with zero
// live spans, and no speculative claims are outstanding.
func checkQuiescent(t *testing.T, g *resgraph.Graph) {
	t.Helper()
	for _, v := range g.Vertices() {
		if err := v.Planner().CheckInvariants(); err != nil {
			t.Errorf("%s: %v", v.Path(), err)
		}
		if n := v.Planner().SpanCount(); n != 0 {
			t.Errorf("%s: %d leaked spans", v.Path(), n)
		}
		if c := v.SpecClaims(); c != 0 {
			t.Errorf("%s: %d leaked speculative claims", v.Path(), c)
		}
		if f := v.Filter(); f != nil {
			if err := f.CheckInvariants(); err != nil {
				t.Errorf("%s filter: %v", v.Path(), err)
			}
			if n := f.SpanCount(); n != 0 {
				t.Errorf("%s filter: %d leaked spans", v.Path(), n)
			}
		}
	}
}

// TestConcurrentMatchStress hammers one traverser from many goroutines —
// committed allocate/cancel churn, speculate/commit/abandon churn, and
// availability queries — under the race detector, then asserts every
// planner invariant (no double-booked units, SP/ET tree agreement, exact
// span accounting) holds and nothing leaked.
func TestConcurrentMatchStress(t *testing.T) {
	g := buildSmall(t, 2, 8, 8, 0, resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	tr := newT(t, g, match.First{})
	js := jobspec.New(3600, jobspec.RX("node", 1, jobspec.R("core", 4)))

	const (
		allocators  = 4
		speculators = 3
		readers     = 2
		iters       = 60
	)
	var ids atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Committed path: MatchAllocate + AvailTimeFirst + Cancel.
	for w := 0; w < allocators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := ids.Add(1)
				if _, err := tr.MatchAllocate(id, js, 0); err != nil {
					if errors.Is(err, ErrNoMatch) {
						continue // transiently full
					}
					t.Error(err)
					return
				}
				if rf := tr.Graph().Root(resgraph.Containment).Filter(); rf != nil {
					if _, err := rf.AvailTimeFirst(0, 60, map[string]int64{"core": 4}); err != nil {
						t.Error(err)
						return
					}
				}
				if err := tr.Cancel(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Speculative path: MatchSpeculate then Commit (and Cancel) or Abandon.
	for w := 0; w < speculators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := ids.Add(1)
				alloc, err := tr.MatchSpeculate(id, js, 0)
				if err != nil {
					if errors.Is(err, ErrNoMatch) {
						continue
					}
					t.Error(err)
					return
				}
				if (i+w)%3 == 0 {
					tr.Abandon(alloc)
					continue
				}
				if err := tr.Commit(alloc); err != nil {
					if errors.Is(err, ErrConflict) {
						continue
					}
					t.Error(err)
					return
				}
				if err := tr.Cancel(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Read-only load: per-vertex planner queries and job listings. The
	// readers run until the mutating goroutines drain, on their own
	// WaitGroup.
	var rwg sync.WaitGroup
	for w := 0; w < readers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			cores := g.ByType("core")
			for i := 0; !stop.Load(); i++ {
				v := cores[i%len(cores)]
				if _, err := v.Planner().AvailDuring(0, 3600); err != nil {
					t.Error(err)
					return
				}
				v.Planner().AvailAt(int64(i % 1000))
				tr.JobCount()
			}
		}()
	}

	wg.Wait()
	stop.Store(true)
	rwg.Wait()

	if tr.JobCount() != 0 {
		t.Fatalf("%d jobs leaked", tr.JobCount())
	}
	checkQuiescent(t, g)
}

// TestConcurrentStressWithFailures adds node down/up churn to the mix: a
// fault goroutine repeatedly takes a node out of service (evicting the
// jobs on it) and restores it while allocators run. Afterwards the store
// must be consistent and fully idle.
func TestConcurrentStressWithFailures(t *testing.T) {
	g := buildSmall(t, 2, 4, 8, 0, resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	tr := newT(t, g, match.First{})
	js := jobspec.New(3600, jobspec.RX("node", 1, jobspec.R("core", 8)))

	var ids atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := ids.Add(1)
				if _, err := tr.MatchAllocate(id, js, 0); err != nil {
					continue // full or transiently down
				}
				// The job may be evicted by the fault goroutine between
				// allocate and cancel; both outcomes must stay consistent.
				if err := tr.Cancel(id); err != nil && !errors.Is(err, ErrUnknownJob) {
					t.Error(err)
					return
				}
			}
		}()
	}
	var nodePaths []string
	for _, v := range g.ByType("node") {
		nodePaths = append(nodePaths, v.Path())
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			path := nodePaths[i%len(nodePaths)]
			if _, err := tr.MarkDown(path); err != nil {
				t.Error(err)
				return
			}
			if err := tr.MarkUp(path); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if tr.JobCount() != 0 {
		t.Fatalf("%d jobs leaked", tr.JobCount())
	}
	checkQuiescent(t, g)
}
