package traverser

import (
	"errors"
	"fmt"

	"fluxion/internal/jobspec"
)

// ErrUnknownType reports a jobspec requesting a resource type that does
// not exist anywhere in the traverser's graph.
var ErrUnknownType = errors.New("traverser: unknown resource type")

// ValidateSpec checks a jobspec against this traverser before it is
// allowed anywhere near the match kernel: structural well-formedness
// (jobspec.Validate — positive counts, slot shape, the nesting-depth
// cap that defuses cycle-inducing request graphs) plus graph-aware
// checks the jobspec package cannot do alone. Every requested resource
// type must already exist in the graph's intern table; the check uses
// Lookup, not ID, so probing with hostile specs cannot pollute the
// shared type table. Schedulers call this at submit time and reject
// failures with a typed error, keeping poison specs out of the compile
// and match paths.
func (t *Traverser) ValidateSpec(js *jobspec.Jobspec) error {
	if js == nil {
		return fmt.Errorf("%w: nil jobspec", jobspec.ErrInvalid)
	}
	if err := js.Validate(); err != nil {
		return err
	}
	if js.Duration < 0 {
		return fmt.Errorf("%w: negative duration %d", jobspec.ErrInvalid, js.Duration)
	}
	tab := t.g.Types()
	// Validate bounded the depth, so this walk terminates even on the
	// shapes it rejected short of the cap.
	var walk func(r *jobspec.Resource) error
	walk = func(r *jobspec.Resource) error {
		if r.Type != jobspec.Slot {
			if _, ok := tab.Lookup(r.Type); !ok {
				return fmt.Errorf("%w: %q", ErrUnknownType, r.Type)
			}
		}
		for _, c := range r.With {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range js.Resources {
		if err := walk(r); err != nil {
			return err
		}
	}
	return nil
}
