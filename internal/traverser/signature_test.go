package traverser

import (
	"errors"
	"testing"

	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
)

func TestBlockSigRecordDedupKeepsMinShortfall(t *testing.T) {
	var s BlockSig
	s.reset(10, 100)
	if !s.Valid || s.At != 10 || s.Dur != 100 || s.HintAt != 10 {
		t.Fatalf("reset: %+v", s)
	}
	s.record(1, 5, 7, 4)
	s.record(1, 5, 7, 2) // same (TreeIn, TypeID): keep the smaller
	s.record(1, 5, 7, 9)
	s.record(1, 5, 8, 3) // different type: separate reason
	s.record(2, 3, 7, 0) // shortfall clamps to >= 1
	if len(s.Reasons) != 3 {
		t.Fatalf("reasons = %+v", s.Reasons)
	}
	if s.Reasons[0].Shortfall != 2 {
		t.Fatalf("dedup kept %d, want 2", s.Reasons[0].Shortfall)
	}
	if s.Reasons[2].Shortfall != 1 {
		t.Fatalf("zero shortfall recorded as %d, want 1", s.Reasons[2].Shortfall)
	}
}

func TestBlockSigOverflow(t *testing.T) {
	var s BlockSig
	s.reset(0, 10)
	for i := int32(0); i < maxSigReasons+5; i++ {
		s.record(i, i+1, 7, 1)
	}
	if !s.Overflow {
		t.Fatal("no overflow")
	}
	if len(s.Reasons) != maxSigReasons {
		t.Fatalf("len = %d", len(s.Reasons))
	}
	s.record(1, 2, 7, 1) // post-overflow records are dropped
	if len(s.Reasons) != maxSigReasons {
		t.Fatal("record after overflow grew the list")
	}
	s.reset(5, 10)
	if s.Overflow || len(s.Reasons) != 0 {
		t.Fatalf("reset did not clear: %+v", s)
	}
}

// TestSigCaptureOnFullSystem checks that a failed immediate match captures
// a localized signature whose hint points at the blocking job's end.
func TestSigCaptureOnFullSystem(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 0, resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	tr := newT(t, g, match.First{})
	fill := jobspec.New(100, jobspec.SlotR(2, jobspec.R("node", 1, jobspec.R("core", 4))))
	if _, err := tr.MatchAllocate(1, fill, 0); err != nil {
		t.Fatal(err)
	}

	cjs, err := tr.Compile(jobspec.New(50, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4)))))
	if err != nil {
		t.Fatal(err)
	}
	var sig BlockSig
	if _, err := tr.MatchAllocateCompiledSig(2, cjs, 0, &sig); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v", err)
	}
	if !sig.Valid || sig.At != 0 || sig.Dur != 50 {
		t.Fatalf("sig = %+v", sig)
	}
	if len(sig.Reasons) == 0 {
		t.Fatal("no reasons captured")
	}
	for _, r := range sig.Reasons {
		if r.Shortfall < 1 || r.TreeOut <= r.TreeIn {
			t.Fatalf("malformed reason %+v", r)
		}
	}
	if sig.HintAt != 100 {
		t.Fatalf("HintAt = %d, want 100 (the filling job's end)", sig.HintAt)
	}

	// The signature must intersect the frees the filling job's cancel
	// publishes — otherwise the waking contract is broken.
	var frees []resgraph.Delta
	g.SetDeltaSink(func(d resgraph.Delta) {
		if d.Kind == resgraph.DeltaFree {
			frees = append(frees, d)
		}
	})
	if err := tr.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if len(frees) == 0 {
		t.Fatal("cancel published no frees")
	}
	hit := false
	for _, f := range frees {
		for _, r := range sig.Reasons {
			if (f.TypeID == r.TypeID || r.TypeID == AnyType) &&
				f.TreeIn < r.TreeOut && r.TreeIn < f.TreeOut {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatalf("no free intersects the signature: frees=%+v reasons=%+v", frees, sig.Reasons)
	}
}

// TestSigReserveProbeFailureMarksWakeAnyFree checks the unlocalizable
// branch: when even the reservation probe fails, the signature degrades
// to wake-on-any-free.
func TestSigReserveProbeFailureMarksWakeAnyFree(t *testing.T) {
	g := buildSmall(t, 1, 2, 4, 0, resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	tr := newT(t, g, match.First{})
	// 3 nodes can never exist in a 2-node system: immediate match and
	// every probe candidate fail.
	cjs, err := tr.Compile(jobspec.New(50, jobspec.SlotR(3, jobspec.R("node", 1, jobspec.R("core", 1)))))
	if err != nil {
		t.Fatal(err)
	}
	var sig BlockSig
	if _, err := tr.MatchAllocateOrReserveCompiledSig(1, cjs, 0, &sig); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v", err)
	}
	if !sig.Valid || !sig.WakeAnyFree {
		t.Fatalf("sig = %+v", sig)
	}
}

// TestSigReservationPublishesClaims checks that a successful reservation
// probe announces its future claims as deltas.
func TestSigReservationPublishesClaims(t *testing.T) {
	g := buildSmall(t, 1, 1, 4, 0, resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	tr := newT(t, g, match.First{})
	var claims []resgraph.Delta
	g.SetDeltaSink(func(d resgraph.Delta) {
		if d.Kind == resgraph.DeltaClaim {
			claims = append(claims, d)
		}
	})
	fill := jobspec.New(100, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4))))
	if _, err := tr.MatchAllocate(1, fill, 0); err != nil {
		t.Fatal(err)
	}
	cjs, err := tr.Compile(jobspec.New(50, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4)))))
	if err != nil {
		t.Fatal(err)
	}
	var sig BlockSig
	alloc, err := tr.MatchAllocateOrReserveCompiledSig(2, cjs, 0, &sig)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Reserved || alloc.At != 100 {
		t.Fatalf("alloc = %+v", alloc)
	}
	if len(claims) == 0 {
		t.Fatal("reservation published no claims")
	}
	for _, c := range claims {
		if c.From != 100 || c.To != 150 {
			t.Fatalf("claim window [%d,%d), want [100,150)", c.From, c.To)
		}
	}
}

// TestSigNilSkipsCapture checks the sig-less compiled path still works.
func TestSigNilSkipsCapture(t *testing.T) {
	g := buildSmall(t, 1, 1, 2, 0, resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	tr := newT(t, g, match.First{})
	cjs, err := tr.Compile(jobspec.New(50, jobspec.SlotR(2, jobspec.R("node", 1, jobspec.R("core", 1)))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MatchAllocateCompiledSig(1, cjs, 0, nil); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v", err)
	}
}
