// Package jgf serializes resource graphs to and from the JSON Graph
// Format, the interchange format flux-sched uses to ship concrete resource
// sets and whole graph stores between components. It lets stores built with
// GRUG be persisted and reloaded, and is the wire format resource-query's
// "dump" command emits.
package jgf

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"fluxion/internal/resgraph"
)

// ErrFormat is wrapped by all decode errors.
var ErrFormat = errors.New("jgf: bad format")

// Document is the top-level JGF envelope.
type Document struct {
	Graph Graph `json:"graph"`
}

// Graph holds the node and edge lists.
type Graph struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// Node is one serialized vertex.
type Node struct {
	ID       string       `json:"id"`
	Metadata NodeMetadata `json:"metadata"`
}

// NodeMetadata mirrors flux-sched's vertex metadata.
type NodeMetadata struct {
	Type       string            `json:"type"`
	Basename   string            `json:"basename"`
	Name       string            `json:"name"`
	ID         int64             `json:"id"`
	UniqID     int64             `json:"uniq_id"`
	Size       int64             `json:"size"`
	Unit       string            `json:"unit,omitempty"`
	Status     string            `json:"status,omitempty"`
	Properties map[string]string `json:"properties,omitempty"`
	Paths      map[string]string `json:"paths,omitempty"`
}

// Edge is one serialized edge.
type Edge struct {
	Source   string       `json:"source"`
	Target   string       `json:"target"`
	Metadata EdgeMetadata `json:"metadata"`
}

// EdgeMetadata carries the subsystem and relationship name.
type EdgeMetadata struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
}

// Encode serializes a graph. Vertices appear in creation order, edges in
// per-vertex subsystem order, so output is deterministic.
func Encode(g *resgraph.Graph) ([]byte, error) {
	doc := Document{}
	for _, v := range g.Vertices() {
		doc.Graph.Nodes = append(doc.Graph.Nodes, Node{
			ID: strconv.FormatInt(v.UniqID, 10),
			Metadata: NodeMetadata{
				Type:       v.Type,
				Basename:   v.Type,
				Name:       v.Name,
				ID:         v.ID,
				UniqID:     v.UniqID,
				Size:       v.Size,
				Unit:       v.Unit,
				Status:     v.Status.String(),
				Properties: v.Properties,
				Paths:      map[string]string{resgraph.Containment: v.Path()},
			},
		})
	}
	subsystems := g.Subsystems()
	for _, v := range g.Vertices() {
		for _, sub := range subsystems {
			for _, e := range v.OutEdges(sub) {
				doc.Graph.Edges = append(doc.Graph.Edges, Edge{
					Source:   strconv.FormatInt(e.From.UniqID, 10),
					Target:   strconv.FormatInt(e.To.UniqID, 10),
					Metadata: EdgeMetadata{Subsystem: e.Subsystem, Name: e.Type},
				})
			}
		}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Decode reconstructs a graph from JGF into a fresh store with the given
// planner range and prune spec, and finalizes it. Reciprocal containment
// "in" edges are re-derived from "contains" edges, so both full dumps and
// contains-only documents load.
func Decode(data []byte, base, horizon int64, spec resgraph.PruneSpec) (*resgraph.Graph, error) {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if len(doc.Graph.Nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrFormat)
	}
	g := resgraph.NewGraph(base, horizon)
	if spec != nil {
		if err := g.SetPruneSpec(spec); err != nil {
			return nil, err
		}
	}
	byID := make(map[string]*resgraph.Vertex, len(doc.Graph.Nodes))
	// Preserve creation order by uniq_id so reassigned IDs stay stable.
	nodes := append([]Node(nil), doc.Graph.Nodes...)
	sort.SliceStable(nodes, func(i, j int) bool {
		return nodes[i].Metadata.UniqID < nodes[j].Metadata.UniqID
	})
	for _, n := range nodes {
		md := n.Metadata
		if md.Type == "" {
			return nil, fmt.Errorf("%w: node %q missing type", ErrFormat, n.ID)
		}
		size := md.Size
		if size == 0 {
			size = 1
		}
		v, err := g.AddVertex(md.Type, md.ID, size)
		if err != nil {
			return nil, fmt.Errorf("%w: node %q: %v", ErrFormat, n.ID, err)
		}
		v.Unit = md.Unit
		if md.Status == "down" {
			v.Status = resgraph.StatusDown
		}
		for k, val := range md.Properties {
			v.SetProperty(k, val)
		}
		if _, dup := byID[n.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate node id %q", ErrFormat, n.ID)
		}
		byID[n.ID] = v
	}
	for _, e := range doc.Graph.Edges {
		if e.Metadata.Subsystem == resgraph.Containment && e.Metadata.Name == resgraph.EdgeIn {
			continue // re-derived below
		}
		from, ok := byID[e.Source]
		if !ok {
			return nil, fmt.Errorf("%w: edge source %q unknown", ErrFormat, e.Source)
		}
		to, ok := byID[e.Target]
		if !ok {
			return nil, fmt.Errorf("%w: edge target %q unknown", ErrFormat, e.Target)
		}
		if e.Metadata.Subsystem == resgraph.Containment {
			if err := g.AddContainment(from, to); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			continue
		}
		if err := g.AddEdge(from, to, e.Metadata.Subsystem, e.Metadata.Name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}
