package jgf

import (
	"errors"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
)

func TestRoundTrip(t *testing.T) {
	orig, err := grug.BuildGraph(grug.Small(2, 3, 4, 16, 100), 0, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig.ByType("node")[1].SetProperty("perfclass", "2")
	orig.ByType("node")[2].Status = resgraph.StatusDown

	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data, 0, 1000, resgraph.PruneSpec{resgraph.ALL: {"core"}})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("Len: %d vs %d", back.Len(), orig.Len())
	}
	// Aggregates identical.
	a1 := orig.Root(resgraph.Containment).Aggregates()
	a2 := back.Root(resgraph.Containment).Aggregates()
	for typ, n := range a1 {
		if a2[typ] != n {
			t.Errorf("agg[%s] = %d, want %d", typ, a2[typ], n)
		}
	}
	// Paths preserved.
	v := back.ByPath("/cluster0/rack1/node4/core17")
	if v == nil {
		t.Fatal("deep path missing after round trip")
	}
	// Properties and status preserved.
	if back.ByType("node")[1].Property("perfclass") != "2" {
		t.Error("property lost")
	}
	if back.ByType("node")[2].Status != resgraph.StatusDown {
		t.Error("status lost")
	}
	// Filters installed per the new spec.
	if back.Root(resgraph.Containment).Filter() == nil {
		t.Error("prune spec not applied on decode")
	}
	// Memory pool sizes preserved.
	mem := back.ByType("memory")[0]
	if mem.Size != 16 || mem.Unit != "GB" {
		t.Errorf("memory pool = size %d unit %q", mem.Size, mem.Unit)
	}
}

func TestRoundTripMultiSubsystem(t *testing.T) {
	g := resgraph.NewGraph(0, 100)
	cl := g.MustAddVertex("cluster", -1, 1)
	nd := g.MustAddVertex("node", -1, 1)
	pdu := g.MustAddVertex("pdu", -1, 50)
	if err := g.AddContainment(cl, nd); err != nil {
		t.Fatal(err)
	}
	if err := g.AddContainment(cl, pdu); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(pdu, nd, "power", "supplies_to"); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	pdus := back.ByType("pdu")
	if len(pdus) != 1 || pdus[0].Size != 50 {
		t.Fatalf("pdu = %v", pdus)
	}
	kids := pdus[0].Children("power")
	if len(kids) != 1 || kids[0].Type != "node" {
		t.Fatalf("power edge lost: %v", kids)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", "nope"},
		{"empty", `{"graph":{"nodes":[],"edges":[]}}`},
		{"missing type", `{"graph":{"nodes":[{"id":"0","metadata":{"name":"x"}}],"edges":[]}}`},
		{"dup id", `{"graph":{"nodes":[
			{"id":"0","metadata":{"type":"a","id":0}},
			{"id":"0","metadata":{"type":"b","id":0,"uniq_id":1}}],"edges":[]}}`},
		{"bad edge source", `{"graph":{"nodes":[{"id":"0","metadata":{"type":"a"}}],
			"edges":[{"source":"9","target":"0","metadata":{"subsystem":"containment","name":"contains"}}]}}`},
		{"bad edge target", `{"graph":{"nodes":[{"id":"0","metadata":{"type":"a"}}],
			"edges":[{"source":"0","target":"9","metadata":{"subsystem":"containment","name":"contains"}}]}}`},
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c.data), 0, 100, nil); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestDecodeDeterministicIDOrder(t *testing.T) {
	// Nodes listed out of uniq_id order still reconstruct with stable
	// per-type IDs.
	data := `{"graph":{"nodes":[
		{"id":"b","metadata":{"type":"node","id":1,"uniq_id":2}},
		{"id":"root","metadata":{"type":"cluster","id":0,"uniq_id":0}},
		{"id":"a","metadata":{"type":"node","id":0,"uniq_id":1}}],
	"edges":[
		{"source":"root","target":"a","metadata":{"subsystem":"containment","name":"contains"}},
		{"source":"root","target":"b","metadata":{"subsystem":"containment","name":"contains"}}]}}`
	g, err := Decode([]byte(data), 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.ByType("node")
	if len(nodes) != 2 || nodes[0].Name != "node0" || nodes[1].Name != "node1" {
		t.Fatalf("nodes = %v", nodes)
	}
	if g.ByPath("/cluster0/node1") == nil {
		t.Fatal("paths not rebuilt")
	}
}
