package rbtree

// Arena is an augmented red-black tree whose nodes live in one flat slab
// and link to each other by int32 index instead of pointer. It is the
// slab-graph counterpart of Tree: same algorithms (CLRS, shared sentinel,
// bottom-up augmentation hook), but zero per-node heap objects — inserting
// N items costs one slice of N small structs, deleted slots are recycled
// through a freelist, and Reset reuses the slab for the next lifetime.
//
// Node references are int32 indices; None (0) is the shared sentinel and
// doubles as the "no node" value, so `n == None` replaces `n == nil`.
// Handles returned by Insert stay valid until that node is deleted or the
// arena is Reset; a deleted handle may be recycled by a later Insert, so
// callers must not retain handles across Delete.
type Arena[T any] struct {
	nodes  []anode[T]
	less   func(a, b T) bool
	update func(n int32) // optional augmentation hook
	root   int32
	free   int32 // freelist head, linked through left; None = empty
	size   int32
}

// None is the null node reference: index 0, the shared sentinel.
const None int32 = 0

type anode[T any] struct {
	item   T
	left   int32
	right  int32
	parent int32
	red    bool
}

// NewArena returns an empty arena tree ordered by less.
func NewArena[T any](less func(a, b T) bool) *Arena[T] {
	t := &Arena[T]{less: less}
	t.nodes = make([]anode[T], 1, 8) // slot 0 is the sentinel: black, self-referential at index 0
	return t
}

// SetUpdate installs the augmentation hook. After any structural change the
// tree invokes fn bottom-up on every node whose subtree contents changed, so
// fn can recompute subtree aggregates from Item(n), Left(n), and Right(n).
// fn must not modify the tree.
func (t *Arena[T]) SetUpdate(fn func(n int32)) { t.update = fn }

// Len reports the number of items in the tree.
func (t *Arena[T]) Len() int { return int(t.size) }

// Cap reports the slab capacity in nodes (including the sentinel slot).
func (t *Arena[T]) Cap() int { return cap(t.nodes) }

// Reset empties the tree, keeping the allocated slab for reuse.
func (t *Arena[T]) Reset() {
	t.nodes = t.nodes[:1]
	t.nodes[0] = anode[T]{}
	t.root, t.free, t.size = None, None, 0
}

// Item returns the item stored at n. n must be a live node.
func (t *Arena[T]) Item(n int32) T { return t.nodes[n].item }

// SetItem replaces the item stored at n without reordering the tree. The
// caller must guarantee the new item sorts identically; use Refresh
// afterwards if augmentation inputs changed.
func (t *Arena[T]) SetItem(n int32, item T) { t.nodes[n].item = item }

// Root returns the root node, or None if the tree is empty.
func (t *Arena[T]) Root() int32 { return t.root }

// Left returns the left child of n, or None.
func (t *Arena[T]) Left(n int32) int32 { return t.nodes[n].left }

// Right returns the right child of n, or None.
func (t *Arena[T]) Right(n int32) int32 { return t.nodes[n].right }

// Min returns the minimum node, or None if the tree is empty.
func (t *Arena[T]) Min() int32 {
	x := t.root
	if x == None {
		return None
	}
	for t.nodes[x].left != None {
		x = t.nodes[x].left
	}
	return x
}

// Max returns the maximum node, or None if the tree is empty.
func (t *Arena[T]) Max() int32 {
	x := t.root
	if x == None {
		return None
	}
	for t.nodes[x].right != None {
		x = t.nodes[x].right
	}
	return x
}

// Next returns the in-order successor of n, or None if n is the maximum.
func (t *Arena[T]) Next(n int32) int32 {
	if n == None {
		return None
	}
	if r := t.nodes[n].right; r != None {
		x := r
		for t.nodes[x].left != None {
			x = t.nodes[x].left
		}
		return x
	}
	x, p := n, t.nodes[n].parent
	for p != None && x == t.nodes[p].right {
		x, p = p, t.nodes[p].parent
	}
	return p
}

// Prev returns the in-order predecessor of n, or None if n is the minimum.
func (t *Arena[T]) Prev(n int32) int32 {
	if n == None {
		return None
	}
	if l := t.nodes[n].left; l != None {
		x := l
		for t.nodes[x].right != None {
			x = t.nodes[x].right
		}
		return x
	}
	x, p := n, t.nodes[n].parent
	for p != None && x == t.nodes[p].left {
		x, p = p, t.nodes[p].parent
	}
	return p
}

// Search returns a node whose item compares equal to item (neither less),
// or None if no such node exists. With duplicate keys any matching node may
// be returned.
func (t *Arena[T]) Search(item T) int32 {
	x := t.root
	for x != None {
		switch {
		case t.less(item, t.nodes[x].item):
			x = t.nodes[x].left
		case t.less(t.nodes[x].item, item):
			x = t.nodes[x].right
		default:
			return x
		}
	}
	return None
}

// Floor returns the greatest node whose item is <= item, or None.
func (t *Arena[T]) Floor(item T) int32 {
	x, best := t.root, None
	for x != None {
		if t.less(item, t.nodes[x].item) {
			x = t.nodes[x].left
		} else {
			best = x
			x = t.nodes[x].right
		}
	}
	return best
}

// FloorFunc is Floor with the search key expressed as a predicate:
// above(x) must report whether x sorts strictly after the key.
func (t *Arena[T]) FloorFunc(above func(item T) bool) int32 {
	x, best := t.root, None
	for x != None {
		if above(t.nodes[x].item) {
			x = t.nodes[x].left
		} else {
			best = x
			x = t.nodes[x].right
		}
	}
	return best
}

// Ceil returns the smallest node whose item is >= item, or None.
func (t *Arena[T]) Ceil(item T) int32 {
	x, best := t.root, None
	for x != None {
		if t.less(t.nodes[x].item, item) {
			x = t.nodes[x].right
		} else {
			best = x
			x = t.nodes[x].left
		}
	}
	return best
}

// Ascend calls fn on every item in ascending order until fn returns false.
func (t *Arena[T]) Ascend(fn func(item T) bool) {
	for n := t.Min(); n != None; n = t.Next(n) {
		if !fn(t.nodes[n].item) {
			return
		}
	}
}

func (t *Arena[T]) doUpdate(n int32) {
	if t.update != nil && n != None {
		t.update(n)
	}
}

// Refresh recomputes augmentation data from n up to the root. Call it
// after mutating state that the update hook reads for n.
func (t *Arena[T]) Refresh(n int32) {
	if n == None {
		return
	}
	t.updatePath(n)
}

func (t *Arena[T]) updatePath(n int32) {
	if t.update == nil {
		return
	}
	for ; n != None; n = t.nodes[n].parent {
		t.update(n)
	}
}

func (t *Arena[T]) leftRotate(x int32) {
	y := t.nodes[x].right
	yl := t.nodes[y].left
	t.nodes[x].right = yl
	if yl != None {
		t.nodes[yl].parent = x
	}
	xp := t.nodes[x].parent
	t.nodes[y].parent = xp
	switch {
	case xp == None:
		t.root = y
	case x == t.nodes[xp].left:
		t.nodes[xp].left = y
	default:
		t.nodes[xp].right = y
	}
	t.nodes[y].left = x
	t.nodes[x].parent = y
	// x is now y's child: recompute bottom-up.
	t.doUpdate(x)
	t.doUpdate(y)
}

func (t *Arena[T]) rightRotate(x int32) {
	y := t.nodes[x].left
	yr := t.nodes[y].right
	t.nodes[x].left = yr
	if yr != None {
		t.nodes[yr].parent = x
	}
	xp := t.nodes[x].parent
	t.nodes[y].parent = xp
	switch {
	case xp == None:
		t.root = y
	case x == t.nodes[xp].right:
		t.nodes[xp].right = y
	default:
		t.nodes[xp].left = y
	}
	t.nodes[y].right = x
	t.nodes[x].parent = y
	t.doUpdate(x)
	t.doUpdate(y)
}

// alloc takes a slot from the freelist or grows the slab.
func (t *Arena[T]) alloc(item T) int32 {
	if f := t.free; f != None {
		t.free = t.nodes[f].left
		t.nodes[f] = anode[T]{item: item, red: true}
		return f
	}
	t.nodes = append(t.nodes, anode[T]{item: item, red: true})
	return int32(len(t.nodes) - 1)
}

// Insert adds item to the tree and returns its node. Duplicate keys are
// allowed; a duplicate is placed after existing equal keys in iteration
// order.
func (t *Arena[T]) Insert(item T) int32 {
	z := t.alloc(item)
	y, x := None, t.root
	for x != None {
		y = x
		if t.less(item, t.nodes[x].item) {
			x = t.nodes[x].left
		} else {
			x = t.nodes[x].right
		}
	}
	t.nodes[z].parent = y
	switch {
	case y == None:
		t.root = z
	case t.less(item, t.nodes[y].item):
		t.nodes[y].left = z
	default:
		t.nodes[y].right = z
	}
	t.size++
	t.updatePath(z)
	t.insertFixup(z)
	return z
}

func (t *Arena[T]) insertFixup(z int32) {
	for t.nodes[t.nodes[z].parent].red {
		zp := t.nodes[z].parent
		zpp := t.nodes[zp].parent
		if zp == t.nodes[zpp].left {
			y := t.nodes[zpp].right
			if t.nodes[y].red {
				t.nodes[zp].red = false
				t.nodes[y].red = false
				t.nodes[zpp].red = true
				z = zpp
			} else {
				if z == t.nodes[zp].right {
					z = zp
					t.leftRotate(z)
					zp = t.nodes[z].parent
					zpp = t.nodes[zp].parent
				}
				t.nodes[zp].red = false
				t.nodes[zpp].red = true
				t.rightRotate(zpp)
			}
		} else {
			y := t.nodes[zpp].left
			if t.nodes[y].red {
				t.nodes[zp].red = false
				t.nodes[y].red = false
				t.nodes[zpp].red = true
				z = zpp
			} else {
				if z == t.nodes[zp].left {
					z = zp
					t.rightRotate(z)
					zp = t.nodes[z].parent
					zpp = t.nodes[zp].parent
				}
				t.nodes[zp].red = false
				t.nodes[zpp].red = true
				t.leftRotate(zpp)
			}
		}
	}
	t.nodes[t.root].red = false
}

func (t *Arena[T]) transplant(u, v int32) {
	up := t.nodes[u].parent
	switch {
	case up == None:
		t.root = v
	case u == t.nodes[up].left:
		t.nodes[up].left = v
	default:
		t.nodes[up].right = v
	}
	t.nodes[v].parent = up
}

// Delete removes node z from the tree and recycles its slot. z must be a
// live node of this tree; the handle is invalid afterwards.
func (t *Arena[T]) Delete(z int32) {
	if z == None {
		return
	}
	y := z
	yWasRed := t.nodes[y].red
	var x int32
	switch {
	case t.nodes[z].left == None:
		x = t.nodes[z].right
		t.transplant(z, x)
	case t.nodes[z].right == None:
		x = t.nodes[z].left
		t.transplant(z, x)
	default:
		y = t.nodes[z].right
		for t.nodes[y].left != None {
			y = t.nodes[y].left
		}
		yWasRed = t.nodes[y].red
		x = t.nodes[y].right
		if t.nodes[y].parent == z {
			t.nodes[x].parent = y // sentinel parent is meaningful for fixup
		} else {
			t.transplant(y, x)
			zr := t.nodes[z].right
			t.nodes[y].right = zr
			t.nodes[zr].parent = y
		}
		t.transplant(z, y)
		zl := t.nodes[z].left
		t.nodes[y].left = zl
		t.nodes[zl].parent = y
		t.nodes[y].red = t.nodes[z].red
	}
	t.size--
	// Recompute aggregates along the spliced path before rebalancing;
	// fixup rotations repair their own nodes locally.
	t.updatePath(t.nodes[x].parent)
	if !yWasRed {
		t.deleteFixup(x)
	}
	// Recycle z's slot onto the freelist (linked through left).
	var zero T
	t.nodes[z] = anode[T]{item: zero, left: t.free}
	t.free = z
	// Restore the sentinel's self-references: transplant and the
	// y.parent==z case can point it at interior nodes temporarily.
	t.nodes[0].left, t.nodes[0].right, t.nodes[0].parent = None, None, None
}

func (t *Arena[T]) deleteFixup(x int32) {
	for x != t.root && !t.nodes[x].red {
		xp := t.nodes[x].parent
		if x == t.nodes[xp].left {
			w := t.nodes[xp].right
			if t.nodes[w].red {
				t.nodes[w].red = false
				t.nodes[xp].red = true
				t.leftRotate(xp)
				xp = t.nodes[x].parent
				w = t.nodes[xp].right
			}
			if !t.nodes[t.nodes[w].left].red && !t.nodes[t.nodes[w].right].red {
				t.nodes[w].red = true
				x = xp
			} else {
				if !t.nodes[t.nodes[w].right].red {
					t.nodes[t.nodes[w].left].red = false
					t.nodes[w].red = true
					t.rightRotate(w)
					w = t.nodes[xp].right
				}
				t.nodes[w].red = t.nodes[xp].red
				t.nodes[xp].red = false
				t.nodes[t.nodes[w].right].red = false
				t.leftRotate(xp)
				x = t.root
			}
		} else {
			w := t.nodes[xp].left
			if t.nodes[w].red {
				t.nodes[w].red = false
				t.nodes[xp].red = true
				t.rightRotate(xp)
				xp = t.nodes[x].parent
				w = t.nodes[xp].left
			}
			if !t.nodes[t.nodes[w].right].red && !t.nodes[t.nodes[w].left].red {
				t.nodes[w].red = true
				x = xp
			} else {
				if !t.nodes[t.nodes[w].left].red {
					t.nodes[t.nodes[w].right].red = false
					t.nodes[w].red = true
					t.leftRotate(w)
					w = t.nodes[xp].left
				}
				t.nodes[w].red = t.nodes[xp].red
				t.nodes[xp].red = false
				t.nodes[t.nodes[w].left].red = false
				t.rightRotate(xp)
				x = t.root
			}
		}
	}
	t.nodes[x].red = false
}
