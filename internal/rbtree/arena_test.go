package rbtree

import (
	"math/rand"
	"sort"
	"testing"
)

// checkArenaInvariants validates the red-black properties, BST order, and
// parent links of an arena tree.
func checkArenaInvariants(t *testing.T, tr *Arena[int]) {
	t.Helper()
	var walk func(n int32) int
	walk = func(n int32) int {
		if n == None {
			return 1
		}
		nd := tr.nodes[n]
		if nd.red {
			if l := nd.left; l != None && tr.nodes[l].red {
				t.Fatalf("red node %d has red left child %d", nd.item, tr.nodes[l].item)
			}
			if r := nd.right; r != None && tr.nodes[r].red {
				t.Fatalf("red node %d has red right child %d", nd.item, tr.nodes[r].item)
			}
		}
		if l := nd.left; l != None {
			if tr.nodes[l].parent != n {
				t.Fatalf("left child %d has wrong parent", tr.nodes[l].item)
			}
			if nd.item < tr.nodes[l].item {
				t.Fatalf("BST violation: parent %d < left child %d", nd.item, tr.nodes[l].item)
			}
		}
		if r := nd.right; r != None {
			if tr.nodes[r].parent != n {
				t.Fatalf("right child %d has wrong parent", tr.nodes[r].item)
			}
			if tr.nodes[r].item < nd.item {
				t.Fatalf("BST violation: right child %d < parent %d", tr.nodes[r].item, nd.item)
			}
		}
		lh := walk(nd.left)
		rh := walk(nd.right)
		if lh != rh {
			t.Fatalf("black-height mismatch at %d: %d vs %d", nd.item, lh, rh)
		}
		if nd.red {
			return lh
		}
		return lh + 1
	}
	if root := tr.Root(); root != None && tr.nodes[root].red {
		t.Fatal("root is red")
	}
	walk(tr.Root())
	if s := tr.nodes[0]; s.left != None || s.right != None || s.parent != None || s.red {
		t.Fatalf("sentinel corrupted: %+v", s)
	}
}

func collectArena(tr *Arena[int]) []int {
	var out []int
	tr.Ascend(func(v int) bool { out = append(out, v); return true })
	return out
}

func TestArenaEmpty(t *testing.T) {
	tr := NewArena[int](intLess)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if tr.Min() != None || tr.Max() != None || tr.Root() != None {
		t.Fatal("empty arena should have None Min/Max/Root")
	}
	if tr.Search(1) != None || tr.Floor(1) != None || tr.Ceil(1) != None {
		t.Fatal("empty arena should have None Search/Floor/Ceil")
	}
	tr.Delete(None) // must not panic
}

func TestArenaInsertAscendingDescending(t *testing.T) {
	for _, desc := range []bool{false, true} {
		tr := NewArena[int](intLess)
		for i := 0; i < 1000; i++ {
			v := i
			if desc {
				v = 999 - i
			}
			tr.Insert(v)
			if i%97 == 0 {
				checkArenaInvariants(t, tr)
			}
		}
		checkArenaInvariants(t, tr)
		got := collectArena(tr)
		if len(got) != 1000 {
			t.Fatalf("len = %d", len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("got[%d] = %d", i, v)
			}
		}
	}
}

func TestArenaDuplicates(t *testing.T) {
	tr := NewArena[int](intLess)
	for i := 0; i < 10; i++ {
		tr.Insert(7)
	}
	checkArenaInvariants(t, tr)
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 10; i++ {
		n := tr.Search(7)
		if n == None {
			t.Fatalf("Search(7) = None with %d left", 10-i)
		}
		tr.Delete(n)
		checkArenaInvariants(t, tr)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestArenaFloorCeilFloorFunc(t *testing.T) {
	tr := NewArena[int](intLess)
	for _, v := range []int{10, 20, 30, 40, 50} {
		tr.Insert(v)
	}
	cases := []struct {
		q           int
		floor, ceil int
		floorNone   bool
		ceilNone    bool
	}{
		{5, 0, 10, true, false},
		{10, 10, 10, false, false},
		{15, 10, 20, false, false},
		{35, 30, 40, false, false},
		{50, 50, 50, false, false},
		{55, 50, 0, false, true},
	}
	for _, c := range cases {
		f := tr.Floor(c.q)
		if c.floorNone != (f == None) || (f != None && tr.Item(f) != c.floor) {
			t.Errorf("Floor(%d) = %v, want %d (none=%v)", c.q, f, c.floor, c.floorNone)
		}
		ff := tr.FloorFunc(func(x int) bool { return x > c.q })
		if ff != f {
			t.Errorf("FloorFunc(%d) = %v, Floor = %v", c.q, ff, f)
		}
		g := tr.Ceil(c.q)
		if c.ceilNone != (g == None) || (g != None && tr.Item(g) != c.ceil) {
			t.Errorf("Ceil(%d) = %v, want %d (none=%v)", c.q, g, c.ceil, c.ceilNone)
		}
	}
}

func TestArenaNextPrev(t *testing.T) {
	tr := NewArena[int](intLess)
	rng := rand.New(rand.NewSource(42))
	for _, v := range rng.Perm(500) {
		tr.Insert(v)
	}
	i := 0
	for n := tr.Min(); n != None; n = tr.Next(n) {
		if tr.Item(n) != i {
			t.Fatalf("Next order broken at %d: got %d", i, tr.Item(n))
		}
		i++
	}
	if i != 500 {
		t.Fatalf("iterated %d", i)
	}
	i = 499
	for n := tr.Max(); n != None; n = tr.Prev(n) {
		if tr.Item(n) != i {
			t.Fatalf("Prev order broken at %d: got %d", i, tr.Item(n))
		}
		i--
	}
}

// TestArenaRandomOpsAgainstReference drives the arena with random inserts
// and deletes and compares against both a sorted-slice reference and the
// pointer-based Tree as a second oracle.
func TestArenaRandomOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewArena[int](intLess)
	oracle := New[int](intLess)
	var ref []int
	for op := 0; op < 20000; op++ {
		if len(ref) == 0 || rng.Intn(100) < 55 {
			v := rng.Intn(2000)
			tr.Insert(v)
			oracle.Insert(v)
			ref = append(ref, v)
			sort.Ints(ref)
		} else {
			i := rng.Intn(len(ref))
			v := ref[i]
			n := tr.Search(v)
			if n == None {
				t.Fatalf("op %d: Search(%d) = None but reference has it", op, v)
			}
			tr.Delete(n)
			oracle.Delete(oracle.Search(v))
			ref = append(ref[:i], ref[i+1:]...)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, tr.Len(), len(ref))
		}
		if op%500 == 0 {
			checkArenaInvariants(t, tr)
			got := collectArena(tr)
			want := collect(oracle)
			for i := range ref {
				if got[i] != ref[i] || want[i] != ref[i] {
					t.Fatalf("op %d: content mismatch at %d: arena %d, tree %d, ref %d",
						op, i, got[i], want[i], ref[i])
				}
			}
		}
	}
	checkArenaInvariants(t, tr)
}

// TestArenaFreelistReuse checks that deleted slots are recycled rather than
// growing the slab without bound.
func TestArenaFreelistReuse(t *testing.T) {
	tr := NewArena[int](intLess)
	for i := 0; i < 64; i++ {
		tr.Insert(i)
	}
	grown := tr.Cap()
	rng := rand.New(rand.NewSource(3))
	for op := 0; op < 10000; op++ {
		n := tr.Insert(rng.Intn(1000))
		tr.Delete(n)
	}
	if tr.Cap() > grown {
		t.Fatalf("slab grew during churn: %d -> %d nodes", grown, tr.Cap())
	}
	checkArenaInvariants(t, tr)
}

func TestArenaReset(t *testing.T) {
	tr := NewArena[int](intLess)
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	c := tr.Cap()
	tr.Reset()
	if tr.Len() != 0 || tr.Root() != None || tr.Min() != None {
		t.Fatal("Reset did not empty the tree")
	}
	if tr.Cap() != c {
		t.Fatalf("Reset dropped capacity: %d -> %d", c, tr.Cap())
	}
	for i := 0; i < 100; i++ {
		tr.Insert(99 - i)
	}
	checkArenaInvariants(t, tr)
	if got := collectArena(tr); len(got) != 100 || got[0] != 0 || got[99] != 99 {
		t.Fatalf("reuse after Reset broken: len=%d", len(got))
	}
}

// TestArenaAugmentation maintains a subtree-minimum aggregate in a side
// slab keyed by the item, the exact shape the planner's earliest-time tree
// uses (items are indices into a point slab; aggregates live in the slab).
func TestArenaAugmentation(t *testing.T) {
	type point struct {
		val, subtreeMin int64
		key             int
	}
	var pts []point
	tr := NewArena[int32](func(a, b int32) bool { return pts[a].key < pts[b].key })
	tr.SetUpdate(func(n int32) {
		i := tr.Item(n)
		m := pts[i].val
		if l := tr.Left(n); l != None {
			if lm := pts[tr.Item(l)].subtreeMin; lm < m {
				m = lm
			}
		}
		if r := tr.Right(n); r != None {
			if rm := pts[tr.Item(r)].subtreeMin; rm < m {
				m = rm
			}
		}
		pts[i].subtreeMin = m
	})

	verify := func() {
		var walk func(n int32) int64
		walk = func(n int32) int64 {
			if n == None {
				return int64(1) << 62
			}
			i := tr.Item(n)
			m := pts[i].val
			if lm := walk(tr.Left(n)); lm < m {
				m = lm
			}
			if rm := walk(tr.Right(n)); rm < m {
				m = rm
			}
			if pts[i].subtreeMin != m {
				t.Fatalf("aggregate stale at key %d: have %d want %d", pts[i].key, pts[i].subtreeMin, m)
			}
			return m
		}
		walk(tr.Root())
	}

	rng := rand.New(rand.NewSource(11))
	var live []int32
	for op := 0; op < 8000; op++ {
		if len(live) == 0 || rng.Intn(100) < 60 {
			pts = append(pts, point{key: rng.Intn(500), val: int64(rng.Intn(100000))})
			i := int32(len(pts) - 1)
			pts[i].subtreeMin = pts[i].val
			live = append(live, tr.Insert(i))
		} else {
			i := rng.Intn(len(live))
			tr.Delete(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if op%250 == 0 {
			verify()
		}
	}
	verify()
}

func TestArenaRefresh(t *testing.T) {
	type item struct{ key, val, subtreeMax int }
	var items []item
	tr := NewArena[int32](func(a, b int32) bool { return items[a].key < items[b].key })
	tr.SetUpdate(func(n int32) {
		i := tr.Item(n)
		m := items[i].val
		if l := tr.Left(n); l != None && items[tr.Item(l)].subtreeMax > m {
			m = items[tr.Item(l)].subtreeMax
		}
		if r := tr.Right(n); r != None && items[tr.Item(r)].subtreeMax > m {
			m = items[tr.Item(r)].subtreeMax
		}
		items[i].subtreeMax = m
	})
	var nodes []int32
	for i := 0; i < 64; i++ {
		items = append(items, item{key: i, val: i, subtreeMax: i})
		nodes = append(nodes, tr.Insert(int32(i)))
	}
	if items[tr.Item(tr.Root())].subtreeMax != 63 {
		t.Fatalf("initial max = %d", items[tr.Item(tr.Root())].subtreeMax)
	}
	items[tr.Item(nodes[10])].val = 1000
	tr.Refresh(nodes[10])
	if items[tr.Item(tr.Root())].subtreeMax != 1000 {
		t.Fatalf("after refresh max = %d", items[tr.Item(tr.Root())].subtreeMax)
	}
	tr.Refresh(None) // must not panic
}

func TestArenaDeleteRootRepeatedly(t *testing.T) {
	tr := NewArena[int](intLess)
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	for tr.Len() > 0 {
		tr.Delete(tr.Root())
		checkArenaInvariants(t, tr)
	}
}

func BenchmarkArenaInsertDelete(b *testing.B) {
	tr := NewArena[int](intLess)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<14; i++ {
		tr.Insert(rng.Intn(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := tr.Insert(rng.Intn(1 << 20))
		tr.Delete(n)
	}
}
