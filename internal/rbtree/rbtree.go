// Package rbtree implements a generic, augmented red-black binary search
// tree with parent pointers.
//
// The tree is the foundation of the Planner (see internal/planner): the
// scheduled-point tree keys nodes by time, and the earliest-time tree keys
// nodes by remaining resource quantity and maintains a subtree aggregate
// (the earliest scheduled time in the subtree) through every rotation,
// insertion, and deletion. The aggregate is maintained via a caller-provided
// update hook, so the tree itself stays policy free.
//
// All operations are O(log n). The tree permits duplicate keys; Delete takes
// a node handle (not a key) so the caller always removes exactly the element
// it intends to.
package rbtree

// Node is a tree node holding one item. Callers obtain nodes from Insert,
// Search, Min, Max, Floor, Ceil, and the Next/Prev iterators, and may stash
// aggregate (augmentation) data inside the item itself: the update hook
// passed to SetUpdate is invoked bottom-up whenever a node's subtree
// changes.
type Node[T any] struct {
	item     T
	left     *Node[T]
	right    *Node[T]
	parent   *Node[T]
	red      bool
	sentinel bool
}

// Item returns the item stored at n.
func (n *Node[T]) Item() T { return n.item }

// Left returns the left child, or nil if none.
func (n *Node[T]) Left() *Node[T] {
	if n.left == nil || n.left.sentinel {
		return nil
	}
	return n.left
}

// Right returns the right child, or nil if none.
func (n *Node[T]) Right() *Node[T] {
	if n.right == nil || n.right.sentinel {
		return nil
	}
	return n.right
}

// Next returns the in-order successor of n, or nil if n is the maximum.
func (n *Node[T]) Next() *Node[T] {
	if n == nil || n.sentinel {
		return nil
	}
	if !n.right.sentinel {
		x := n.right
		for !x.left.sentinel {
			x = x.left
		}
		return x
	}
	x, p := n, n.parent
	for !p.sentinel && x == p.right {
		x, p = p, p.parent
	}
	if p.sentinel {
		return nil
	}
	return p
}

// Prev returns the in-order predecessor of n, or nil if n is the minimum.
func (n *Node[T]) Prev() *Node[T] {
	if n == nil || n.sentinel {
		return nil
	}
	if !n.left.sentinel {
		x := n.left
		for !x.right.sentinel {
			x = x.right
		}
		return x
	}
	x, p := n, n.parent
	for !p.sentinel && x == p.left {
		x, p = p, p.parent
	}
	if p.sentinel {
		return nil
	}
	return p
}

// Tree is a red-black tree ordered by a strict-weak less function.
// The zero value is not usable; construct trees with New.
type Tree[T any] struct {
	nilNode *Node[T] // shared sentinel: black, self-referential
	root    *Node[T]
	size    int
	less    func(a, b T) bool
	update  func(n *Node[T]) // optional augmentation hook
}

// New returns an empty tree ordered by less.
func New[T any](less func(a, b T) bool) *Tree[T] {
	s := &Node[T]{sentinel: true}
	s.left, s.right, s.parent = s, s, s
	return &Tree[T]{nilNode: s, root: s, less: less}
}

// SetUpdate installs the augmentation hook. After any structural change the
// tree invokes fn bottom-up on every node whose subtree contents changed, so
// fn can recompute subtree aggregates from n.Item(), n.Left(), and
// n.Right(). fn must not modify the tree.
func (t *Tree[T]) SetUpdate(fn func(n *Node[T])) { t.update = fn }

// Len reports the number of items in the tree.
func (t *Tree[T]) Len() int { return t.size }

// Root returns the root node, or nil if the tree is empty.
func (t *Tree[T]) Root() *Node[T] {
	if t.root.sentinel {
		return nil
	}
	return t.root
}

// Min returns the minimum node, or nil if the tree is empty.
func (t *Tree[T]) Min() *Node[T] {
	if t.root.sentinel {
		return nil
	}
	x := t.root
	for !x.left.sentinel {
		x = x.left
	}
	return x
}

// Max returns the maximum node, or nil if the tree is empty.
func (t *Tree[T]) Max() *Node[T] {
	if t.root.sentinel {
		return nil
	}
	x := t.root
	for !x.right.sentinel {
		x = x.right
	}
	return x
}

// Search returns a node whose item compares equal to item (neither less),
// or nil if no such node exists. With duplicate keys any matching node may
// be returned.
func (t *Tree[T]) Search(item T) *Node[T] {
	x := t.root
	for !x.sentinel {
		switch {
		case t.less(item, x.item):
			x = x.left
		case t.less(x.item, item):
			x = x.right
		default:
			return x
		}
	}
	return nil
}

// Floor returns the greatest node whose item is <= item, or nil.
func (t *Tree[T]) Floor(item T) *Node[T] {
	x, best := t.root, (*Node[T])(nil)
	for !x.sentinel {
		if t.less(item, x.item) {
			x = x.left
		} else {
			best = x
			x = x.right
		}
	}
	return best
}

// FloorFunc is Floor with the search key expressed as a predicate:
// above(x) must report whether x sorts strictly after the key. It lets
// callers on hot paths search without materializing a probe item.
func (t *Tree[T]) FloorFunc(above func(item T) bool) *Node[T] {
	x, best := t.root, (*Node[T])(nil)
	for !x.sentinel {
		if above(x.item) {
			x = x.left
		} else {
			best = x
			x = x.right
		}
	}
	return best
}

// Ceil returns the smallest node whose item is >= item, or nil.
func (t *Tree[T]) Ceil(item T) *Node[T] {
	x, best := t.root, (*Node[T])(nil)
	for !x.sentinel {
		if t.less(x.item, item) {
			x = x.right
		} else {
			best = x
			x = x.left
		}
	}
	return best
}

// Ascend calls fn on every item in ascending order until fn returns false.
func (t *Tree[T]) Ascend(fn func(item T) bool) {
	for n := t.Min(); n != nil; n = n.Next() {
		if !fn(n.item) {
			return
		}
	}
}

// AscendFrom calls fn on every item >= start in ascending order until fn
// returns false.
func (t *Tree[T]) AscendFrom(start T, fn func(item T) bool) {
	for n := t.Ceil(start); n != nil; n = n.Next() {
		if !fn(n.item) {
			return
		}
	}
}

func (t *Tree[T]) doUpdate(n *Node[T]) {
	if t.update != nil && !n.sentinel {
		t.update(n)
	}
}

// Refresh recomputes augmentation data from n up to the root. Call it
// after mutating fields of n's item that the update hook reads.
func (t *Tree[T]) Refresh(n *Node[T]) {
	if n == nil || n.sentinel {
		return
	}
	t.updatePath(n)
}

// updatePath recomputes aggregates from n up to the root.
func (t *Tree[T]) updatePath(n *Node[T]) {
	if t.update == nil {
		return
	}
	for ; !n.sentinel; n = n.parent {
		t.update(n)
	}
}

func (t *Tree[T]) leftRotate(x *Node[T]) {
	y := x.right
	x.right = y.left
	if !y.left.sentinel {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent.sentinel:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	// x is now y's child: recompute bottom-up.
	t.doUpdate(x)
	t.doUpdate(y)
}

func (t *Tree[T]) rightRotate(x *Node[T]) {
	y := x.left
	x.left = y.right
	if !y.right.sentinel {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent.sentinel:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	t.doUpdate(x)
	t.doUpdate(y)
}

// Insert adds item to the tree and returns its node. Duplicate keys are
// allowed; a duplicate is placed after existing equal keys in iteration
// order.
func (t *Tree[T]) Insert(item T) *Node[T] {
	z := &Node[T]{item: item, red: true, left: t.nilNode, right: t.nilNode, parent: t.nilNode}
	y, x := t.nilNode, t.root
	for !x.sentinel {
		y = x
		if t.less(z.item, x.item) {
			x = x.left
		} else {
			x = x.right
		}
	}
	z.parent = y
	switch {
	case y.sentinel:
		t.root = z
	case t.less(z.item, y.item):
		y.left = z
	default:
		y.right = z
	}
	t.size++
	t.updatePath(z)
	t.insertFixup(z)
	return z
}

func (t *Tree[T]) insertFixup(z *Node[T]) {
	for z.parent.red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.red {
				z.parent.red = false
				y.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.leftRotate(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.rightRotate(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.red {
				z.parent.red = false
				y.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rightRotate(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.leftRotate(z.parent.parent)
			}
		}
	}
	t.root.red = false
}

func (t *Tree[T]) transplant(u, v *Node[T]) {
	switch {
	case u.parent.sentinel:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

// Delete removes node z from the tree. z must be a live node of this tree.
func (t *Tree[T]) Delete(z *Node[T]) {
	if z == nil || z.sentinel {
		return
	}
	y := z
	yWasRed := y.red
	var x *Node[T]
	switch {
	case z.left.sentinel:
		x = z.right
		t.transplant(z, z.right)
	case z.right.sentinel:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = z.right
		for !y.left.sentinel {
			y = y.left
		}
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			x.parent = y // sentinel parent is meaningful for fixup
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
	}
	t.size--
	// Recompute aggregates along the spliced path before rebalancing;
	// fixup rotations repair their own nodes locally.
	t.updatePath(x.parent)
	if !yWasRed {
		t.deleteFixup(x)
	}
	// Detach z so stale handles fail fast.
	z.left, z.right, z.parent = nil, nil, nil
	// Restore the shared sentinel's self-references: transplant and the
	// y.parent==z case can point it at interior nodes temporarily.
	t.nilNode.left, t.nilNode.right, t.nilNode.parent = t.nilNode, t.nilNode, t.nilNode
}

func (t *Tree[T]) deleteFixup(x *Node[T]) {
	for x != t.root && !x.red {
		if x == x.parent.left {
			w := x.parent.right
			if w.red {
				w.red = false
				x.parent.red = true
				t.leftRotate(x.parent)
				w = x.parent.right
			}
			if !w.left.red && !w.right.red {
				w.red = true
				x = x.parent
			} else {
				if !w.right.red {
					w.left.red = false
					w.red = true
					t.rightRotate(w)
					w = x.parent.right
				}
				w.red = x.parent.red
				x.parent.red = false
				w.right.red = false
				t.leftRotate(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.red {
				w.red = false
				x.parent.red = true
				t.rightRotate(x.parent)
				w = x.parent.left
			}
			if !w.right.red && !w.left.red {
				w.red = true
				x = x.parent
			} else {
				if !w.left.red {
					w.right.red = false
					w.red = true
					t.leftRotate(w)
					w = x.parent.left
				}
				w.red = x.parent.red
				x.parent.red = false
				w.left.red = false
				t.rightRotate(x.parent)
				x = t.root
			}
		}
	}
	x.red = false
}
