package rbtree

import (
	"math/rand"
	"testing"
)

// FloorFunc(above) must agree with Floor(q) when above(item) == item > q:
// both return the greatest item <= q. The predicate form exists so hot
// paths can query without allocating a probe item.
func TestFloorFuncMatchesFloor(t *testing.T) {
	tr := New[int](intLess)
	for _, v := range []int{10, 20, 30, 40, 50} {
		tr.Insert(v)
	}
	for q := 0; q <= 60; q++ {
		want := tr.Floor(q)
		got := tr.FloorFunc(func(item int) bool { return item > q })
		switch {
		case (want == nil) != (got == nil):
			t.Fatalf("FloorFunc(>%d) nil-ness mismatch: floor=%v funcfloor=%v", q, want, got)
		case want != nil && want.Item() != got.Item():
			t.Fatalf("FloorFunc(>%d) = %d, Floor = %d", q, got.Item(), want.Item())
		}
	}
}

func TestFloorFuncEmptyTree(t *testing.T) {
	tr := New[int](intLess)
	if n := tr.FloorFunc(func(int) bool { return false }); n != nil {
		t.Fatalf("FloorFunc on empty tree = %v", n)
	}
}

func TestFloorFuncRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int](intLess)
	present := make(map[int]bool)
	for i := 0; i < 500; i++ {
		v := rng.Intn(1000)
		if !present[v] {
			tr.Insert(v)
			present[v] = true
		}
		q := rng.Intn(1100) - 50
		want, got := tr.Floor(q), tr.FloorFunc(func(item int) bool { return item > q })
		if (want == nil) != (got == nil) || (want != nil && want.Item() != got.Item()) {
			t.Fatalf("step %d: Floor(%d)=%v FloorFunc=%v", i, q, want, got)
		}
	}
}
