package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

// checkInvariants validates the red-black properties and returns the black
// height of the tree.
func checkInvariants(t *testing.T, tr *Tree[int]) {
	t.Helper()
	var walk func(n *Node[int]) int
	walk = func(n *Node[int]) int {
		if n == nil {
			return 1
		}
		if n.red {
			if l := n.Left(); l != nil && l.red {
				t.Fatalf("red node %d has red left child %d", n.item, l.item)
			}
			if r := n.Right(); r != nil && r.red {
				t.Fatalf("red node %d has red right child %d", n.item, r.item)
			}
		}
		if l := n.Left(); l != nil {
			if l.parent != n {
				t.Fatalf("left child %d has wrong parent", l.item)
			}
			if n.item < l.item {
				t.Fatalf("BST violation: parent %d < left child %d", n.item, l.item)
			}
		}
		if r := n.Right(); r != nil {
			if r.parent != n {
				t.Fatalf("right child %d has wrong parent", r.item)
			}
			if r.item < n.item {
				t.Fatalf("BST violation: right child %d < parent %d", r.item, n.item)
			}
		}
		lh := walk(n.Left())
		rh := walk(n.Right())
		if lh != rh {
			t.Fatalf("black-height mismatch at %d: %d vs %d", n.item, lh, rh)
		}
		if n.red {
			return lh
		}
		return lh + 1
	}
	if root := tr.Root(); root != nil && root.red {
		t.Fatal("root is red")
	}
	walk(tr.Root())
}

func collect(tr *Tree[int]) []int {
	var out []int
	tr.Ascend(func(v int) bool { out = append(out, v); return true })
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New[int](intLess)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if tr.Min() != nil || tr.Max() != nil || tr.Root() != nil {
		t.Fatal("empty tree should have nil Min/Max/Root")
	}
	if tr.Search(1) != nil || tr.Floor(1) != nil || tr.Ceil(1) != nil {
		t.Fatal("empty tree should have nil Search/Floor/Ceil")
	}
	tr.Delete(nil) // must not panic
}

func TestInsertAscending(t *testing.T) {
	tr := New[int](intLess)
	for i := 0; i < 1000; i++ {
		tr.Insert(i)
		if i%97 == 0 {
			checkInvariants(t, tr)
		}
	}
	checkInvariants(t, tr)
	got := collect(tr)
	if len(got) != 1000 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestInsertDescending(t *testing.T) {
	tr := New[int](intLess)
	for i := 999; i >= 0; i-- {
		tr.Insert(i)
	}
	checkInvariants(t, tr)
	if got := collect(tr); len(got) != 1000 || got[0] != 0 || got[999] != 999 {
		t.Fatalf("unexpected order: len=%d", len(got))
	}
}

func TestDuplicates(t *testing.T) {
	tr := New[int](intLess)
	for i := 0; i < 10; i++ {
		tr.Insert(7)
	}
	checkInvariants(t, tr)
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Delete them one handle at a time.
	for i := 0; i < 10; i++ {
		n := tr.Search(7)
		if n == nil {
			t.Fatalf("Search(7) nil with %d left", 10-i)
		}
		tr.Delete(n)
		checkInvariants(t, tr)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestFloorCeil(t *testing.T) {
	tr := New[int](intLess)
	for _, v := range []int{10, 20, 30, 40, 50} {
		tr.Insert(v)
	}
	cases := []struct {
		q           int
		floor, ceil int
		floorNil    bool
		ceilNil     bool
	}{
		{5, 0, 10, true, false},
		{10, 10, 10, false, false},
		{15, 10, 20, false, false},
		{35, 30, 40, false, false},
		{50, 50, 50, false, false},
		{55, 50, 0, false, true},
	}
	for _, c := range cases {
		f := tr.Floor(c.q)
		if c.floorNil != (f == nil) || (f != nil && f.Item() != c.floor) {
			t.Errorf("Floor(%d) = %v, want %d (nil=%v)", c.q, f, c.floor, c.floorNil)
		}
		g := tr.Ceil(c.q)
		if c.ceilNil != (g == nil) || (g != nil && g.Item() != c.ceil) {
			t.Errorf("Ceil(%d) = %v, want %d (nil=%v)", c.q, g, c.ceil, c.ceilNil)
		}
	}
}

func TestNextPrev(t *testing.T) {
	tr := New[int](intLess)
	rng := rand.New(rand.NewSource(42))
	vals := rng.Perm(500)
	for _, v := range vals {
		tr.Insert(v)
	}
	i := 0
	for n := tr.Min(); n != nil; n = n.Next() {
		if n.Item() != i {
			t.Fatalf("Next order broken at %d: got %d", i, n.Item())
		}
		i++
	}
	if i != 500 {
		t.Fatalf("iterated %d", i)
	}
	i = 499
	for n := tr.Max(); n != nil; n = n.Prev() {
		if n.Item() != i {
			t.Fatalf("Prev order broken at %d: got %d", i, n.Item())
		}
		i--
	}
}

func TestAscendFrom(t *testing.T) {
	tr := New[int](intLess)
	for i := 0; i < 100; i += 10 {
		tr.Insert(i)
	}
	var got []int
	tr.AscendFrom(35, func(v int) bool { got = append(got, v); return v < 60 })
	want := []int{40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestRandomOpsAgainstReference drives the tree with random inserts and
// deletes and compares against a sorted-slice reference model.
func TestRandomOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int](intLess)
	var ref []int
	for op := 0; op < 20000; op++ {
		if len(ref) == 0 || rng.Intn(100) < 55 {
			v := rng.Intn(2000)
			tr.Insert(v)
			ref = append(ref, v)
			sort.Ints(ref)
		} else {
			i := rng.Intn(len(ref))
			v := ref[i]
			n := tr.Search(v)
			if n == nil {
				t.Fatalf("op %d: Search(%d) = nil but reference has it", op, v)
			}
			tr.Delete(n)
			ref = append(ref[:i], ref[i+1:]...)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, tr.Len(), len(ref))
		}
		if op%500 == 0 {
			checkInvariants(t, tr)
			got := collect(tr)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("op %d: content mismatch at %d: %d vs %d", op, i, got[i], ref[i])
				}
			}
		}
	}
	checkInvariants(t, tr)
}

// augItem carries a secondary value and a subtree-minimum aggregate, the
// same augmentation shape the planner's earliest-time tree uses.
type augItem struct {
	key        int
	val        int64
	subtreeMin int64
}

func TestAugmentationMaintained(t *testing.T) {
	less := func(a, b *augItem) bool { return a.key < b.key }
	tr := New[*augItem](less)
	tr.SetUpdate(func(n *Node[*augItem]) {
		m := n.Item().val
		if l := n.Left(); l != nil && l.Item().subtreeMin < m {
			m = l.Item().subtreeMin
		}
		if r := n.Right(); r != nil && r.Item().subtreeMin < m {
			m = r.Item().subtreeMin
		}
		n.Item().subtreeMin = m
	})

	verify := func() {
		var walk func(n *Node[*augItem]) int64
		walk = func(n *Node[*augItem]) int64 {
			if n == nil {
				return int64(1) << 62
			}
			m := n.Item().val
			if lm := walk(n.Left()); lm < m {
				m = lm
			}
			if rm := walk(n.Right()); rm < m {
				m = rm
			}
			if n.Item().subtreeMin != m {
				t.Fatalf("aggregate stale at key %d: have %d want %d", n.Item().key, n.Item().subtreeMin, m)
			}
			return m
		}
		walk(tr.Root())
	}

	rng := rand.New(rand.NewSource(11))
	var live []*Node[*augItem]
	for op := 0; op < 8000; op++ {
		if len(live) == 0 || rng.Intn(100) < 60 {
			it := &augItem{key: rng.Intn(500), val: int64(rng.Intn(100000))}
			it.subtreeMin = it.val
			live = append(live, tr.Insert(it))
		} else {
			i := rng.Intn(len(live))
			tr.Delete(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if op%250 == 0 {
			verify()
		}
	}
	verify()
}

// TestQuickSortedIteration property: for any input slice, ascending
// iteration yields the sorted slice.
func TestQuickSortedIteration(t *testing.T) {
	f := func(vals []int) bool {
		tr := New[int](intLess)
		for _, v := range vals {
			tr.Insert(v)
		}
		want := append([]int(nil), vals...)
		sort.Ints(want)
		got := collect(tr)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFloorCeil property: Floor/Ceil agree with a linear scan.
func TestQuickFloorCeil(t *testing.T) {
	f := func(vals []int, q int) bool {
		tr := New[int](intLess)
		for _, v := range vals {
			tr.Insert(v)
		}
		var wantFloor, wantCeil *int
		for i := range vals {
			v := vals[i]
			if v <= q && (wantFloor == nil || v > *wantFloor) {
				wantFloor = &v
			}
			if v >= q && (wantCeil == nil || v < *wantCeil) {
				wantCeil = &v
			}
		}
		f2 := tr.Floor(q)
		c2 := tr.Ceil(q)
		if (wantFloor == nil) != (f2 == nil) || (wantCeil == nil) != (c2 == nil) {
			return false
		}
		if wantFloor != nil && f2.Item() != *wantFloor {
			return false
		}
		if wantCeil != nil && c2.Item() != *wantCeil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRootRepeatedly(t *testing.T) {
	tr := New[int](intLess)
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	for tr.Len() > 0 {
		tr.Delete(tr.Root())
		checkInvariants(t, tr)
	}
}

func TestSearchMissing(t *testing.T) {
	tr := New[int](intLess)
	for i := 0; i < 50; i += 2 {
		tr.Insert(i)
	}
	for i := 1; i < 50; i += 2 {
		if tr.Search(i) != nil {
			t.Fatalf("Search(%d) should be nil", i)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int](intLess)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Int())
	}
}

func BenchmarkSearch(b *testing.B) {
	tr := New[int](intLess)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<16; i++ {
		tr.Insert(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(rng.Intn(1 << 20))
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr := New[int](intLess)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<14; i++ {
		tr.Insert(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := tr.Insert(rng.Intn(1 << 20))
		tr.Delete(n)
	}
}

func TestRefresh(t *testing.T) {
	type item struct {
		key, val, subtreeMax int
	}
	tr := New[*item](func(a, b *item) bool { return a.key < b.key })
	tr.SetUpdate(func(n *Node[*item]) {
		m := n.Item().val
		if l := n.Left(); l != nil && l.Item().subtreeMax > m {
			m = l.Item().subtreeMax
		}
		if r := n.Right(); r != nil && r.Item().subtreeMax > m {
			m = r.Item().subtreeMax
		}
		n.Item().subtreeMax = m
	})
	var nodes []*Node[*item]
	for i := 0; i < 64; i++ {
		nodes = append(nodes, tr.Insert(&item{key: i, val: i, subtreeMax: i}))
	}
	if tr.Root().Item().subtreeMax != 63 {
		t.Fatalf("initial max = %d", tr.Root().Item().subtreeMax)
	}
	// Mutate a mid value and Refresh: the root aggregate must follow.
	nodes[10].Item().val = 1000
	tr.Refresh(nodes[10])
	if tr.Root().Item().subtreeMax != 1000 {
		t.Fatalf("after refresh max = %d", tr.Root().Item().subtreeMax)
	}
	tr.Refresh(nil) // must not panic
}
