package fluxion

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
)

func TestSpawnInstance(t *testing.T) {
	parent := newFluxion(t)
	// Parent job: 2 exclusive nodes (4 cores each) + 8 GB from each
	// node's 16 GB pool.
	spec := jobspec.New(0,
		jobspec.SlotR(2,
			jobspec.R("node", 1, jobspec.R("core", 4), jobspec.R("memory", 8))))
	if _, err := parent.MatchAllocate(1, spec, 0); err != nil {
		t.Fatal(err)
	}

	child, err := parent.SpawnInstance(1,
		WithPolicy("low"),
		WithPruneFilters("ALL:core"))
	if err != nil {
		t.Fatal(err)
	}
	agg := child.Graph().Root(resgraph.Containment).Aggregates()
	if agg["node"] != 2 || agg["core"] != 8 {
		t.Fatalf("child aggregates = %v", agg)
	}
	// Partial pool grant: each child memory pool holds 8, not 16.
	if agg["memory"] != 16 {
		t.Fatalf("child memory agg = %d, want 16 (2 pools x 8 granted)", agg["memory"])
	}
	for _, m := range child.Graph().ByType("memory") {
		if m.Size != 8 {
			t.Fatalf("child memory pool size = %d", m.Size)
		}
	}
	if child.Graph().Root(resgraph.Containment).Filter() == nil {
		t.Fatal("child prune spec not applied")
	}

	// The child schedules sub-jobs within the grant.
	sub := jobspec.New(60, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4))))
	for id := int64(1); id <= 2; id++ {
		if _, err := child.MatchAllocate(id, sub, 0); err != nil {
			t.Fatalf("child job %d: %v", id, err)
		}
	}
	if _, err := child.MatchAllocate(3, sub, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("child over-grant: %v", err)
	}
	// And can recurse another level down (paper: arbitrary depth).
	grand, err := child.SpawnInstance(1)
	if err != nil {
		t.Fatal(err)
	}
	if grand.Graph().Root(resgraph.Containment).Aggregates()["core"] != 4 {
		t.Fatalf("grandchild aggregates = %v", grand.Graph().Root(resgraph.Containment).Aggregates())
	}

	// Paths mirror the parent's.
	if child.Graph().ByPath("/cluster0/rack0/node0") == nil && child.Graph().ByPath("/cluster0/rack0/node1") == nil &&
		child.Graph().ByPath("/cluster0/rack1/node2") == nil {
		t.Fatal("child paths do not mirror parent containment")
	}
}

func TestSpawnInstanceErrors(t *testing.T) {
	parent := newFluxion(t)
	if _, err := parent.SpawnInstance(42); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v", err)
	}
	if _, err := parent.MatchAllocate(1, jobspec.NodeLocal(1, 1, 2, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.SpawnInstance(1, WithRecipeYAML([]byte("x"))); err == nil {
		t.Fatal("store source accepted")
	}
	if _, err := parent.SpawnInstance(1, WithPolicy("bogus")); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := parent.SpawnInstance(1, WithPruneFilters("broken")); err == nil {
		t.Fatal("bad prune spec accepted")
	}
}

func TestSpawnInstancePropertiesCarry(t *testing.T) {
	parent := newFluxion(t)
	for _, n := range parent.Graph().ByType("node") {
		n.SetProperty("perfclass", "2")
	}
	if _, err := parent.MatchAllocate(1, jobspec.New(0, jobspec.RX("node", 2, jobspec.R("core", 4))), 0); err != nil {
		t.Fatal(err)
	}
	child, err := parent.SpawnInstance(1, WithPolicy("variation"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range child.Graph().ByType("node") {
		if n.Property("perfclass") != "2" {
			t.Fatal("property lost in child")
		}
	}
}

// TestSpawnInstanceConcurrentCancel races SpawnInstance against a
// concurrent cancel of the same grant. Every outcome must be clean:
// either the spawn won the critical section and produced a child built
// from the still-live grant, or the cancel won and the spawn reports
// ErrUnknownJob. Anything else — a partial child, a panic, a race
// detector report — is the regression this test pins down.
func TestSpawnInstanceConcurrentCancel(t *testing.T) {
	spec := jobspec.New(0,
		jobspec.SlotR(2, jobspec.R("node", 1, jobspec.R("core", 4))))
	for round := 0; round < 50; round++ {
		parent := newFluxion(t)
		if _, err := parent.MatchAllocate(1, spec, 0); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var spawnErr error
		var child *Fluxion
		go func() {
			defer wg.Done()
			child, spawnErr = parent.SpawnInstance(1)
		}()
		go func() {
			defer wg.Done()
			_ = parent.Cancel(1)
		}()
		wg.Wait()
		switch {
		case spawnErr == nil:
			// Spawn won: the child must reflect the whole 2-node grant.
			agg := child.Graph().Root(resgraph.Containment).Aggregates()
			if agg["node"] != 2 || agg["core"] != 8 {
				t.Fatalf("round %d: torn child aggregates %v", round, agg)
			}
		case errors.Is(spawnErr, ErrUnknownJob):
			// Cancel won: clean unknown-job error.
		default:
			t.Fatalf("round %d: %v", round, spawnErr)
		}
	}
}

// TestSpawnInstanceChurn spawns children of a stable grant while other
// goroutines churn the parent — allocating and cancelling grants whose
// subtrees attach to and detach from the same racks, each cancel
// publishing a fresh MVCC epoch over the shared slab graph. Run under
// -race this is the regression test for the unlocked clone walk; the
// invariant is that every child mirrors exactly the stable grant no
// matter what the churn does around it.
func TestSpawnInstanceChurn(t *testing.T) {
	parent := newFluxion(t)
	// Stable grant: one full node.
	stable := jobspec.New(0,
		jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4), jobspec.R("memory", 16))))
	if _, err := parent.MatchAllocate(1, stable, 0); err != nil {
		t.Fatal(err)
	}

	const rounds = 100
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	// Churners: attach/detach single-core grants, forcing filter, planner,
	// and epoch mutations on the vertices the clone walk reads.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			churn := jobspec.New(0, jobspec.SlotR(1, jobspec.R("core", 1)))
			for i := 0; i < rounds; i++ {
				id := base + int64(i)
				if _, err := parent.MatchAllocate(id, churn, 0); err != nil {
					errs <- fmt.Errorf("churn alloc %d: %w", id, err)
					return
				}
				if err := parent.Cancel(id); err != nil {
					errs <- fmt.Errorf("churn cancel %d: %w", id, err)
					return
				}
			}
		}(1000 * int64(w+1))
	}
	// Spawner: children of the stable grant must be identical every time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			child, err := parent.SpawnInstance(1)
			if err != nil {
				errs <- fmt.Errorf("spawn %d: %w", i, err)
				return
			}
			agg := child.Graph().Root(resgraph.Containment).Aggregates()
			if agg["node"] != 1 || agg["core"] != 4 || agg["memory"] != 16 {
				errs <- fmt.Errorf("spawn %d: torn child aggregates %v", i, agg)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSpawnInstanceChildDecisionParity drives the same workload through
// a spawned child and through a standalone instance built from an
// equivalent recipe. The grant covers rack0's two nodes completely, so
// the child's graph is vertex-for-vertex the standalone system (same
// paths, same IDs, same sizes) and the scheduler must make identical
// decisions on both — states, times, and placements.
func TestSpawnInstanceChildDecisionParity(t *testing.T) {
	parent := newFluxion(t)
	grant := jobspec.New(0,
		jobspec.SlotR(2, jobspec.R("node", 1, jobspec.R("core", 4), jobspec.R("memory", 16))))
	if _, err := parent.MatchAllocate(1, grant, 0); err != nil {
		t.Fatal(err)
	}
	child, err := parent.SpawnInstance(1, WithPruneFilters("ALL:core,ALL:node"))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := New(
		WithRecipeYAML([]byte(`
name: rack0-twin
root:
  type: cluster
  with:
    - type: rack
      count: 1
      with:
        - type: node
          count: 2
          with:
            - {type: core, count: 4}
            - {type: memory, count: 1, size: 16, unit: GB}
`)),
		WithPruneFilters("ALL:core,ALL:node"))
	if err != nil {
		t.Fatal(err)
	}

	for _, qp := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		cs, err := sched.New(child.Traverser(), qp)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := sched.New(flat.Traverser(), qp)
		if err != nil {
			t.Fatal(err)
		}
		// An oversubscribed mix: full-node, half-node, and two-node jobs
		// so backfill and reservations engage.
		for id := int64(1); id <= 12; id++ {
			spec := jobspec.New(50+10*(id%4),
				jobspec.SlotR(1+id%2, jobspec.R("node", 1, jobspec.R("core", 2+2*(id%2)))))
			if _, err := cs.Submit(id, spec); err != nil {
				t.Fatalf("%s child submit %d: %v", qp, id, err)
			}
			if _, err := fs.Submit(id, spec); err != nil {
				t.Fatalf("%s flat submit %d: %v", qp, id, err)
			}
		}
		cs.Run(0)
		fs.Run(0)
		for id := int64(1); id <= 12; id++ {
			cj, _ := cs.Job(id)
			fj, _ := fs.Job(id)
			if cj == nil || fj == nil {
				t.Fatalf("%s job %d missing (child=%v flat=%v)", qp, id, cj, fj)
			}
			if cj.State != fj.State || cj.StartAt != fj.StartAt || cj.EndAt != fj.EndAt {
				t.Fatalf("%s job %d diverged: %v@[%d,%d] vs %v@[%d,%d]",
					qp, id, cj.State, cj.StartAt, cj.EndAt, fj.State, fj.StartAt, fj.EndAt)
			}
			if cj.Alloc != nil && fj.Alloc != nil {
				if got, want := nodePaths(cj), nodePaths(fj); got != want {
					t.Fatalf("%s job %d placement diverged: %s vs %s", qp, id, got, want)
				}
			}
		}
		// Reset both instances for the next policy.
		for id := int64(1); id <= 12; id++ {
			_, _ = cs.Withdraw(id)
			_, _ = fs.Withdraw(id)
		}
	}
}

func nodePaths(j *sched.Job) string {
	var paths []string
	for _, v := range j.Alloc.Nodes() {
		paths = append(paths, v.Path())
	}
	sort.Strings(paths)
	return fmt.Sprint(paths)
}

func TestSpawnInstanceDeepChain(t *testing.T) {
	// Recurse four levels, halving the grant each time.
	f := newFluxion(t)
	cur := f
	want := int64(16) // 4 nodes x 4 cores
	for depth := 0; depth < 4 && want >= 2; depth++ {
		n := want / 4 // whole nodes to grab
		if n == 0 {
			break
		}
		spec := jobspec.New(0, jobspec.RX("node", n, jobspec.R("core", 4)))
		if _, err := cur.MatchAllocate(1, spec, 0); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		child, err := cur.SpawnInstance(1, WithPruneFilters("ALL:core,ALL:node"))
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		got := child.Graph().Root(resgraph.Containment).Aggregates()["core"]
		if got != n*4 {
			t.Fatalf("depth %d: cores = %d, want %d", depth, got, n*4)
		}
		cur = child
		want = n * 4
	}
}
