package fluxion

import (
	"errors"
	"testing"

	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
)

func TestSpawnInstance(t *testing.T) {
	parent := newFluxion(t)
	// Parent job: 2 exclusive nodes (4 cores each) + 8 GB from each
	// node's 16 GB pool.
	spec := jobspec.New(0,
		jobspec.SlotR(2,
			jobspec.R("node", 1, jobspec.R("core", 4), jobspec.R("memory", 8))))
	if _, err := parent.MatchAllocate(1, spec, 0); err != nil {
		t.Fatal(err)
	}

	child, err := parent.SpawnInstance(1,
		WithPolicy("low"),
		WithPruneFilters("ALL:core"))
	if err != nil {
		t.Fatal(err)
	}
	agg := child.Graph().Root(resgraph.Containment).Aggregates()
	if agg["node"] != 2 || agg["core"] != 8 {
		t.Fatalf("child aggregates = %v", agg)
	}
	// Partial pool grant: each child memory pool holds 8, not 16.
	if agg["memory"] != 16 {
		t.Fatalf("child memory agg = %d, want 16 (2 pools x 8 granted)", agg["memory"])
	}
	for _, m := range child.Graph().ByType("memory") {
		if m.Size != 8 {
			t.Fatalf("child memory pool size = %d", m.Size)
		}
	}
	if child.Graph().Root(resgraph.Containment).Filter() == nil {
		t.Fatal("child prune spec not applied")
	}

	// The child schedules sub-jobs within the grant.
	sub := jobspec.New(60, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4))))
	for id := int64(1); id <= 2; id++ {
		if _, err := child.MatchAllocate(id, sub, 0); err != nil {
			t.Fatalf("child job %d: %v", id, err)
		}
	}
	if _, err := child.MatchAllocate(3, sub, 0); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("child over-grant: %v", err)
	}
	// And can recurse another level down (paper: arbitrary depth).
	grand, err := child.SpawnInstance(1)
	if err != nil {
		t.Fatal(err)
	}
	if grand.Graph().Root(resgraph.Containment).Aggregates()["core"] != 4 {
		t.Fatalf("grandchild aggregates = %v", grand.Graph().Root(resgraph.Containment).Aggregates())
	}

	// Paths mirror the parent's.
	if child.Graph().ByPath("/cluster0/rack0/node0") == nil && child.Graph().ByPath("/cluster0/rack0/node1") == nil &&
		child.Graph().ByPath("/cluster0/rack1/node2") == nil {
		t.Fatal("child paths do not mirror parent containment")
	}
}

func TestSpawnInstanceErrors(t *testing.T) {
	parent := newFluxion(t)
	if _, err := parent.SpawnInstance(42); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v", err)
	}
	if _, err := parent.MatchAllocate(1, jobspec.NodeLocal(1, 1, 2, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.SpawnInstance(1, WithRecipeYAML([]byte("x"))); err == nil {
		t.Fatal("store source accepted")
	}
	if _, err := parent.SpawnInstance(1, WithPolicy("bogus")); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := parent.SpawnInstance(1, WithPruneFilters("broken")); err == nil {
		t.Fatal("bad prune spec accepted")
	}
}

func TestSpawnInstancePropertiesCarry(t *testing.T) {
	parent := newFluxion(t)
	for _, n := range parent.Graph().ByType("node") {
		n.SetProperty("perfclass", "2")
	}
	if _, err := parent.MatchAllocate(1, jobspec.New(0, jobspec.RX("node", 2, jobspec.R("core", 4))), 0); err != nil {
		t.Fatal(err)
	}
	child, err := parent.SpawnInstance(1, WithPolicy("variation"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range child.Graph().ByType("node") {
		if n.Property("perfclass") != "2" {
			t.Fatal("property lost in child")
		}
	}
}

func TestSpawnInstanceDeepChain(t *testing.T) {
	// Recurse four levels, halving the grant each time.
	f := newFluxion(t)
	cur := f
	want := int64(16) // 4 nodes x 4 cores
	for depth := 0; depth < 4 && want >= 2; depth++ {
		n := want / 4 // whole nodes to grab
		if n == 0 {
			break
		}
		spec := jobspec.New(0, jobspec.RX("node", n, jobspec.R("core", 4)))
		if _, err := cur.MatchAllocate(1, spec, 0); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		child, err := cur.SpawnInstance(1, WithPruneFilters("ALL:core,ALL:node"))
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		got := child.Graph().Root(resgraph.Containment).Aggregates()["core"]
		if got != n*4 {
			t.Fatalf("depth %d: cores = %d, want %d", depth, got, n*4)
		}
		cur = child
		want = n * 4
	}
}
