package fluxion

import (
	"errors"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/sched"
)

// TestNewSharded exercises the public sharded constructor end to end:
// store options flow through, the partition honors WithShardCut, and a
// small workload drains across shards.
func TestNewSharded(t *testing.T) {
	sh, err := NewSharded(2, sched.EASY,
		WithRecipe(grug.Small(2, 2, 4, 0, 0)),
		WithPolicy("first"),
		WithPruneFilters("ALL:core,ALL:node"),
		WithShardCut("rack"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != 2 {
		t.Fatalf("shards = %d", sh.Shards())
	}
	for id := int64(1); id <= 6; id++ {
		spec := jobspec.New(50, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4))))
		if _, err := sh.Submit(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	sh.Run(0)
	for id := int64(1); id <= 6; id++ {
		j, ok := sh.Job(id)
		if !ok || j.State != sched.StateCompleted {
			t.Fatalf("job %d: %v", id, j)
		}
	}
	if m := sh.Metrics(); m.Completed != 6 {
		t.Fatalf("metrics completed = %d", m.Completed)
	}

	// Bad cut type surfaces at construction.
	if _, err := NewSharded(2, sched.FCFS,
		WithRecipe(grug.Small(2, 2, 4, 0, 0)), WithShardCut("nope")); err == nil {
		t.Fatal("unknown shard cut accepted")
	}
}

// TestNewShardedWithDefense: WithDefense must reach the per-shard
// scheduler loops — admission backpressure rejecting with ErrOverload
// proves the defense layer is live behind the router.
func TestNewShardedWithDefense(t *testing.T) {
	sh, err := NewSharded(1, sched.FCFS,
		WithRecipe(grug.Small(2, 2, 4, 0, 0)),
		WithPruneFilters("ALL:core,ALL:node"),
		WithDefense(DefenseConfig{AdmitHigh: 1, AdmitLow: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	// First submit queues (no Schedule between submits, so it stays
	// pending); the second must bounce off the watermark.
	small := jobspec.New(50, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4))))
	if _, err := sh.Submit(1, small); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Submit(2, small); !errors.Is(err, sched.ErrOverload) {
		t.Fatalf("want ErrOverload past AdmitHigh=1, got %v", err)
	}
}

// TestNewShardedWithSupervisor: WithShardSupervisor must enable the
// supervision layer — an injected cycle panic fails the shard, submits
// error with no live shard, and Reabsorb restores service.
func TestNewShardedWithSupervisor(t *testing.T) {
	sh, err := NewSharded(1, sched.FCFS,
		WithRecipe(grug.Small(2, 2, 4, 0, 0)),
		WithPruneFilters("ALL:core,ALL:node"),
		WithShardSupervisor(ShardSupervisorConfig{FailAfter: 1, RecoveryProbe: -1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Supervised() {
		t.Fatal("supervisor not enabled")
	}
	kill := true
	sh.SetCycleHook(func(shard int, now int64) {
		if kill {
			panic("injected")
		}
	})
	sh.Schedule()
	sh.Schedule()
	if h := sh.ShardHealth(0); h != ShardFailed {
		t.Fatalf("health %v after kill, want failed", h)
	}
	spec := jobspec.New(50, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4))))
	if _, err := sh.Submit(1, spec); err == nil {
		t.Fatal("submit accepted with every shard failed")
	}
	kill = false
	if err := sh.Reabsorb(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Submit(1, spec); err != nil {
		t.Fatal(err)
	}
	sh.Run(0)
	if j, _ := sh.Job(1); j.State != sched.StateCompleted {
		t.Fatalf("post-reabsorb job finished %v", j.State)
	}
	if got := sh.SupervisorStats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
}
