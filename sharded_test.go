package fluxion

import (
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/sched"
)

// TestNewSharded exercises the public sharded constructor end to end:
// store options flow through, the partition honors WithShardCut, and a
// small workload drains across shards.
func TestNewSharded(t *testing.T) {
	sh, err := NewSharded(2, sched.EASY,
		WithRecipe(grug.Small(2, 2, 4, 0, 0)),
		WithPolicy("first"),
		WithPruneFilters("ALL:core,ALL:node"),
		WithShardCut("rack"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != 2 {
		t.Fatalf("shards = %d", sh.Shards())
	}
	for id := int64(1); id <= 6; id++ {
		spec := jobspec.New(50, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 4))))
		if _, err := sh.Submit(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	sh.Run(0)
	for id := int64(1); id <= 6; id++ {
		j, ok := sh.Job(id)
		if !ok || j.State != sched.StateCompleted {
			t.Fatalf("job %d: %v", id, j)
		}
	}
	if m := sh.Metrics(); m.Completed != 6 {
		t.Fatalf("metrics completed = %d", m.Completed)
	}

	// Bad cut type surfaces at construction.
	if _, err := NewSharded(2, sched.FCFS,
		WithRecipe(grug.Small(2, 2, 4, 0, 0)), WithShardCut("nope")); err == nil {
		t.Fatal("unknown shard cut accepted")
	}
}
