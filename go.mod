module fluxion

go 1.22
