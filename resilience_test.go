package fluxion

import (
	"errors"
	"strings"
	"testing"

	"fluxion/internal/jobspec"
)

// TestDownSubtreesSkippedAcrossPoliciesAndFormats checks, for every match
// policy, that matching routes around a downed node, and that down status
// round-trips through both JGF and GraphML into identical match results.
func TestDownSubtreesSkippedAcrossPoliciesAndFormats(t *testing.T) {
	policies := []string{"first", "high", "low", "locality", "variation"}
	for _, policy := range policies {
		t.Run(policy, func(t *testing.T) {
			f := newFluxion(t, WithPolicy(policy))
			nodes := f.Find("node", "")
			if len(nodes) != 4 {
				t.Fatalf("nodes = %v", nodes)
			}
			down := nodes[1]
			if _, err := f.MarkDown(down); err != nil {
				t.Fatal(err)
			}

			// A job needing every surviving node must avoid the downed one.
			spec := jobspec.NodeLocal(3, 1, 4, 0, 0, 100)
			alloc, err := f.MatchAllocate(1, spec, 0)
			if err != nil {
				t.Fatalf("3-node match under %s: %v", policy, err)
			}
			for _, gr := range alloc.Grants() {
				if gr.Path == down || strings.HasPrefix(gr.Path, down+"/") {
					t.Fatalf("%s granted %s inside down subtree %s", policy, gr.Path, down)
				}
			}
			if err := f.Cancel(1); err != nil {
				t.Fatal(err)
			}

			// With one of four nodes down, a 4-node job is unsatisfiable.
			if _, err := f.MatchAllocate(2, jobspec.NodeLocal(4, 1, 4, 0, 0, 100), 0); !errors.Is(err, ErrNoMatch) {
				t.Fatalf("4-node match under %s: %v", policy, err)
			}
			if ok, err := f.MatchSatisfy(jobspec.NodeLocal(4, 1, 4, 0, 0, 100)); err != nil || ok {
				t.Fatalf("satisfy 4 nodes under %s: %v %v", policy, ok, err)
			}

			want := matchGrants(t, f, policy, spec)

			// Round-trip the downed store through both formats; matches
			// must be grant-for-grant identical.
			jgfDoc, err := f.JGF()
			if err != nil {
				t.Fatal(err)
			}
			gmlDoc, err := f.GraphML()
			if err != nil {
				t.Fatal(err)
			}
			for name, opt := range map[string]Option{
				"jgf":     WithJGF(jgfDoc),
				"graphml": WithGraphML(gmlDoc),
			} {
				f2, err := New(opt, WithPolicy(policy),
					WithPruneFilters("ALL:core,ALL:node,ALL:memory"))
				if err != nil {
					t.Fatalf("%s reload: %v", name, err)
				}
				if got := f2.Find("node", "down"); len(got) != 1 || got[0] != down {
					t.Fatalf("%s: down nodes = %v", name, got)
				}
				got := matchGrants(t, f2, policy, spec)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d grants, want %d", name, policy, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s grant %d: got %+v want %+v", name, policy, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// matchGrants matches spec on a scratch job and returns the grants,
// cancelling afterwards so the store is left untouched.
func matchGrants(t *testing.T, f *Fluxion, policy string, spec *Jobspec) []Grant {
	t.Helper()
	alloc, err := f.MatchAllocate(999, spec, 0)
	if err != nil {
		t.Fatalf("match under %s: %v", policy, err)
	}
	grants := alloc.Grants()
	if err := f.Cancel(999); err != nil {
		t.Fatal(err)
	}
	return grants
}
