package fluxion

import (
	"encoding/json"
	"errors"
	"fmt"

	"fluxion/internal/jgf"
	"fluxion/internal/traverser"
)

// ErrCheckpoint is wrapped by all checkpoint decode/restore errors.
var ErrCheckpoint = errors.New("fluxion: bad checkpoint")

// checkpointDoc is the serialized scheduler state: the store as JGF plus
// every live allocation and reservation.
type checkpointDoc struct {
	Version int               `json:"version"`
	Graph   json.RawMessage   `json:"graph"`
	Jobs    []checkpointAlloc `json:"jobs"`
}

type checkpointAlloc struct {
	ID       int64             `json:"id"`
	At       int64             `json:"at"`
	Duration int64             `json:"duration"`
	Reserved bool              `json:"reserved,omitempty"`
	Grants   []traverser.Grant `json:"grants"`
}

// Checkpoint serializes the store and every live allocation so a restarted
// scheduler can resume exactly where it stopped (crash recovery /
// fail-over — the statelessness Fluxion inherits from keeping all
// scheduler state in the resource graph).
func (f *Fluxion) Checkpoint() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	graph, err := jgf.Encode(f.g)
	if err != nil {
		return nil, err
	}
	doc := checkpointDoc{Version: 1, Graph: graph}
	for _, id := range f.tr.Jobs() {
		alloc, _ := f.tr.Info(id)
		doc.Jobs = append(doc.Jobs, checkpointAlloc{
			ID:       id,
			At:       alloc.At,
			Duration: alloc.Duration,
			Reserved: alloc.Reserved,
			Grants:   alloc.Grants(),
		})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Restore rebuilds a Fluxion instance from a Checkpoint document: the
// store is reloaded and every allocation reinstalled (spans and filter
// aggregates included). opts configure policy/prune filters/base/horizon;
// store sources must not be passed.
func Restore(data []byte, opts ...Option) (*Fluxion, error) {
	var doc checkpointDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCheckpoint, doc.Version)
	}
	if len(doc.Graph) == 0 {
		return nil, fmt.Errorf("%w: missing graph", ErrCheckpoint)
	}
	f, err := New(append(opts, WithJGF(doc.Graph))...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	for _, job := range doc.Jobs {
		if _, err := f.tr.Reinstall(job.ID, job.At, job.Duration, job.Reserved, job.Grants); err != nil {
			return nil, fmt.Errorf("%w: job %d: %v", ErrCheckpoint, job.ID, err)
		}
	}
	return f, nil
}
