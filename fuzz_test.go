package fluxion

// Fuzz target for the checkpoint restore path: arbitrary (and
// seeded-then-mutated real) checkpoint bytes must either restore to a
// working instance or fail with an error wrapping ErrCheckpoint —
// never panic. Recovery feeds snapshot payloads through Restore, so
// this is the durability subsystem's outermost parser.

import (
	"errors"
	"testing"

	"fluxion/internal/jobspec"
)

func FuzzRestore(f *testing.F) {
	// Seed with real checkpoint bytes: empty system, allocated system,
	// allocation + reservation, and a down node.
	fx, err := New(
		WithRecipeYAML([]byte(testRecipe)),
		WithPruneFilters("ALL:core,ALL:node,ALL:memory"),
	)
	if err != nil {
		f.Fatal(err)
	}
	seed := func() {
		data, err := fx.Checkpoint()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed()
	if _, err := fx.MatchAllocate(1, jobspec.NodeLocal(4, 1, 4, 0, 0, 100), 0); err != nil {
		f.Fatal(err)
	}
	seed()
	if _, err := fx.MatchAllocateOrReserve(2, jobspec.NodeLocal(2, 1, 4, 8, 0, 50), 0); err != nil {
		f.Fatal(err)
	}
	seed()
	if _, err := fx.MarkDown(firstNodePath(f, fx)); err != nil {
		f.Fatal(err)
	}
	seed()
	// Structurally near-miss documents.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"graph":{},"jobs":[{"id":1}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := Restore(data, WithPruneFilters("ALL:core,ALL:node,ALL:memory"))
		if err != nil {
			if !errors.Is(err, ErrCheckpoint) {
				t.Fatalf("restore error does not wrap ErrCheckpoint: %v", err)
			}
			return
		}
		// A successful restore must yield a usable instance.
		if _, err := restored.Checkpoint(); err != nil {
			t.Fatalf("restored instance cannot checkpoint: %v", err)
		}
		_ = restored.Jobs()
	})
}

func firstNodePath(f *testing.F, fx *Fluxion) string {
	nodes := fx.Find("node", "up")
	if len(nodes) == 0 {
		f.Fatal("no nodes in test recipe")
	}
	return nodes[0]
}
